"""Failure injection: exceptions and adversarial components through the
parallel machinery.

Errors must propagate out of parallel executions promptly and leave the
shared pool reusable — the properties that make a fork/join substrate
trustworthy in production.  The chaos classes at the bottom drive the
seeded fault-injection framework (``repro.faults``) against the polynomial
workload: with resilience policies on, every run must converge to the
exact unfaulted value; with them off, the first fault must fail fast.
"""

import math
import os
import random
import threading
import time

import pytest

from repro.common import (
    CancellationError,
    IllegalStateError,
    NotPowerOfTwoError,
    RejectedExecutionError,
    TaskTimeoutError,
)
from repro.core import IdentityCollector, PowerReduceCollector, power_collect
from repro.core.polynomial import horner, polynomial_value
from repro.faults import FaultInjected, FaultPlan, RetryPolicy, fault_injection
from repro.faults import policy as fault_policy
from repro.forkjoin import ForkJoinPool, RecursiveAction, RecursiveTask
from repro.streams import Collector, Collectors, Stream, stream_of
from repro.streams.spliterator import Characteristics, Spliterator
from repro.streams.stream_support import StreamSupport


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="failure")
    yield p
    p.shutdown()


class TestExceptionPropagation:
    def test_map_exception_sequential(self):
        with pytest.raises(ZeroDivisionError):
            Stream.range(0, 10).map(lambda x: 1 // (x - 5)).to_list()

    def test_map_exception_parallel(self, pool):
        with pytest.raises(ZeroDivisionError):
            (
                Stream.range(0, 10_000)
                .parallel()
                .with_pool(pool)
                .map(lambda x: 1 // (x - 7777))
                .to_list()
            )

    def test_filter_exception_parallel(self, pool):
        def bad(x):
            if x == 5000:
                raise KeyError("poison")
            return True

        with pytest.raises(KeyError):
            Stream.range(0, 10_000).parallel().with_pool(pool).filter(bad).count()

    def test_accumulator_exception_parallel(self, pool):
        def explode(acc, t):
            raise ValueError("acc")

        with pytest.raises(ValueError, match="acc"):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(
                lambda: [], explode, lambda a, b: a.extend(b)
            )

    def test_combiner_exception_parallel(self, pool):
        def bad_combine(a, b):
            raise RuntimeError("comb")

        with pytest.raises(RuntimeError, match="comb"):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(
                lambda: [], lambda acc, t: acc.append(t), bad_combine
            )

    def test_supplier_exception_parallel(self, pool):
        collector = Collector.of(
            lambda: (_ for _ in ()).throw(OSError("sup")),
            lambda a, t: None,
            lambda a, b: a,
        )
        with pytest.raises(OSError):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(collector)

    def test_pool_reusable_after_failures(self, pool):
        for _ in range(5):
            with pytest.raises(ZeroDivisionError):
                Stream.range(0, 1000).parallel().with_pool(pool).map(
                    lambda x: 1 // 0
                ).to_list()
        # The pool still computes correctly afterwards.
        assert Stream.range(0, 1000).parallel().with_pool(pool).sum() == 499500

    def test_stream_consumed_even_when_terminal_raises(self):
        s = Stream.of_items(1, 2, 3).map(lambda x: 1 // 0)
        with pytest.raises(ZeroDivisionError):
            s.to_list()
        with pytest.raises(IllegalStateError):
            s.to_list()

    def test_power_collect_exception(self, pool):
        with pytest.raises(ArithmeticError):
            power_collect(
                PowerReduceCollector(lambda a, b: (_ for _ in ()).throw(
                    ArithmeticError("op")
                )),
                list(range(64)),
                pool=pool,
            )


class TestAdversarialSpliterators:
    def test_lying_size_estimate_still_correct(self, pool):
        class Liar(Spliterator):
            """Claims a huge size but delivers 10 elements."""

            def __init__(self):
                self.items = list(range(10))

            def try_advance(self, action):
                if self.items:
                    action(self.items.pop(0))
                    return True
                return False

            def try_split(self):
                return None

            def estimate_size(self):
                return 10**12

            def characteristics(self):
                return Characteristics.ORDERED

        out = StreamSupport.stream(Liar(), parallel=True).with_pool(pool).to_list()
        assert out == list(range(10))

    def test_never_splitting_source_parallel(self, pool):
        class Monolith(Spliterator):
            def __init__(self, n):
                self.i, self.n = 0, n

            def try_advance(self, action):
                if self.i < self.n:
                    action(self.i)
                    self.i += 1
                    return True
                return False

            def try_split(self):
                return None

            def estimate_size(self):
                return self.n - self.i

            def characteristics(self):
                return Characteristics.SIZED | Characteristics.ORDERED

        out = (
            StreamSupport.stream(Monolith(100), parallel=True)
            .with_pool(pool)
            .map(lambda x: x + 1)
            .sum()
        )
        assert out == sum(range(1, 101))

    def test_non_power2_rejected_before_work_starts(self, pool):
        calls = []
        with pytest.raises(NotPowerOfTwoError):
            power_collect(IdentityCollector(), list(range(6)), pool=pool)
        assert calls == []


class TestNumericEdgeCases:
    def test_polynomial_nan_propagates(self, pool):
        from repro.core import polynomial_value

        out = polynomial_value([1.0, float("nan"), 0.0, 0.0], 1.0, pool=pool)
        assert math.isnan(out)

    def test_polynomial_inf(self, pool):
        from repro.core import polynomial_value

        out = polynomial_value([float("inf"), 0.0], 2.0, pool=pool)
        assert math.isinf(out)

    def test_reduce_with_huge_ints(self, pool):
        data = [10**100] * 64
        out = power_collect(PowerReduceCollector(lambda a, b: a + b), data, pool=pool)
        assert out == 64 * 10**100


class TestStress:
    def test_deep_pipeline(self):
        s = Stream.range(0, 100)
        for _ in range(100):
            s = s.map(lambda x: x + 1)
        assert s.to_list() == list(range(100, 200))

    def test_wide_flat_map(self, pool):
        out = (
            Stream.range(0, 100)
            .parallel()
            .with_pool(pool)
            .flat_map(lambda x: range(100))
            .count()
        )
        assert out == 10_000

    def test_many_concurrent_parallel_streams(self, pool):
        import threading

        results = []
        lock = threading.Lock()

        def worker(seed):
            out = Stream.range(0, 2000).parallel().with_pool(pool).map(
                lambda x: x * seed
            ).sum()
            with lock:
                results.append(out == seed * sum(range(2000)))

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(1, 9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results) and len(results) == 8

    def test_empty_stream_all_parallel_terminals(self, pool):
        make = lambda: Stream.empty().parallel().with_pool(pool)
        assert make().to_list() == []
        assert make().count() == 0
        assert make().sum() == 0
        assert make().reduce(lambda a, b: a + b).is_empty()
        assert make().min().is_empty()
        assert not make().any_match(lambda x: True)
        assert make().all_match(lambda x: False)
        assert make().find_first().is_empty()
        seen = []
        make().for_each(seen.append)
        assert seen == []


class _Sleep(RecursiveTask):
    """Leaf that sleeps, then returns a marker value."""

    def __init__(self, seconds, value=None):
        super().__init__()
        self.seconds = seconds
        self.value = value
        self.started = threading.Event()

    def compute(self):
        self.started.set()
        time.sleep(self.seconds)
        return self.value


class TestFailFastCancellation:
    """The first leaf failure must cancel the rest of the terminal's task
    tree — not merely propagate after every leaf has run."""

    def test_poisoned_collect_skips_most_of_the_tree(self):
        n = 1 << 20
        target = 2048
        leaves = n // target  # 512
        # Seeded position, constrained to the rightmost leaf: the invoking
        # worker computes the right spine inline, so that leaf is
        # deterministically among the first scheduled.  Leaves that happen
        # to complete *before* the first failure are sunk cost no
        # cancellation mechanism can reclaim, so an unconstrained random
        # position would make this assertion depend on scheduling luck.
        poison = random.Random(2026).randrange(n - target, n)

        def f(x):
            if x == poison:
                raise ZeroDivisionError("poison")
            return x * 2

        with ForkJoinPool(parallelism=8, name="failfast") as p:
            with pytest.raises(ZeroDivisionError):
                (
                    Stream.range(0, n)
                    .parallel()
                    .with_pool(p)
                    .with_target_size(target)
                    .map(f)
                    .to_list()
                )
            stats = p.stats()
        # Without fail-fast every one of the 512 leaves executes; with it
        # the cancelled subtrees never run at all.
        assert stats["tasks_executed"] < leaves // 4
        assert stats["failfast_cancellations"] >= 1
        assert stats["tasks_cancelled"] > 0

    def test_original_exception_wins_over_cancellation(self, pool):
        class Poison(Exception):
            pass

        def f(x):
            if x == 4321:
                raise Poison("first failure")
            return x

        # The caller must see the leaf's own exception, never the
        # CancellationError injected into sibling subtrees.
        with pytest.raises(Poison):
            Stream.range(0, 1 << 16).parallel().with_pool(pool).map(f).to_list()

    def test_for_each_fails_fast(self, pool):
        def f(x):
            if x == 9999:
                raise LookupError("fe")

        with pytest.raises(LookupError):
            Stream.range(0, 1 << 15).parallel().with_pool(pool).for_each(f)

    def test_match_predicate_exception_fails_fast(self, pool):
        def pred(x):
            if x == 5000:
                raise TypeError("pred")
            return False

        with pytest.raises(TypeError):
            Stream.range(0, 1 << 15).parallel().with_pool(pool).any_match(pred)

    def test_reduce_op_exception_fails_fast(self, pool):
        def op(a, b):
            raise ArithmeticError("op")

        with pytest.raises(ArithmeticError):
            Stream.range(0, 1 << 15).parallel().with_pool(pool).reduce(op)

    def test_power_collect_counts_cancellation(self):
        with ForkJoinPool(parallelism=4, name="pc-ff") as p:
            with pytest.raises(ArithmeticError):
                power_collect(
                    PowerReduceCollector(
                        lambda a, b: (_ for _ in ()).throw(ArithmeticError("op"))
                    ),
                    list(range(1 << 12)),
                    pool=p,
                )
            assert p.stats()["failfast_cancellations"] >= 1


class TestTaskCancellation:
    def test_cancel_unstarted_task(self):
        t = _Sleep(0)
        assert t.cancel()
        assert t.is_cancelled()
        assert t.is_done()
        with pytest.raises(CancellationError):
            t.join()

    def test_cancel_is_idempotent_and_loses_to_completion(self):
        t = _Sleep(0, value=7)
        t.run()
        assert not t.cancel()
        assert not t.is_cancelled()
        assert t.join() == 7

    def test_cancelled_task_never_computes(self):
        ran = []

        class Probe(RecursiveAction):
            def compute(self):
                ran.append(1)

        t = Probe()
        t.cancel()
        assert t.run() is False
        assert ran == []

    def test_cancelled_tasks_do_not_count_as_executed(self):
        with ForkJoinPool(parallelism=2, name="cancel-stats") as p:
            p.invoke(_Sleep(0, value=1))
            executed = p.stats()["tasks_executed"]
            t = _Sleep(0)
            t._pool = p
            t.cancel()
            stats = p.stats()
        assert stats["tasks_executed"] == executed
        assert stats["tasks_cancelled"] >= 1


class TestPoolLifecycle:
    def test_graceful_shutdown_drains_queued_work(self):
        p = ForkJoinPool(parallelism=2, name="drain")
        tasks = [p.submit(_Sleep(0.005, value=i)) for i in range(20)]
        p.shutdown()
        # Every task submitted before shutdown keeps its completion
        # guarantee: all joins return results, none hangs, none cancels.
        assert [t.join(timeout=2.0) for t in tasks] == list(range(20))
        assert p.is_shutdown()
        assert p.await_termination(timeout=2.0)
        assert p.is_terminated()

    def test_submit_after_shutdown_rejected(self):
        p = ForkJoinPool(parallelism=1, name="rej")
        p.shutdown()
        with pytest.raises(RejectedExecutionError):
            p.submit(_Sleep(0))
        # Backwards compatible: RejectedExecutionError is an IllegalStateError.
        assert issubclass(RejectedExecutionError, IllegalStateError)

    def test_shutdown_now_unblocks_every_joiner(self):
        p = ForkJoinPool(parallelism=1, name="abrupt")
        blocker = p.submit(_Sleep(0.2, value="done"))
        assert blocker.started.wait(timeout=2.0)  # worker is now occupied
        queued = [p.submit(_Sleep(10.0)) for _ in range(10)]
        start = time.monotonic()
        cancelled = p.shutdown_now()
        for t in queued:
            with pytest.raises(CancellationError):
                t.join(timeout=2.0)
        elapsed = time.monotonic() - start
        assert elapsed < 2.0
        assert len(cancelled) == len(queued)
        # The task that was already running is never interrupted.
        assert blocker.join(timeout=2.0) == "done"
        assert p.await_termination(timeout=2.0)
        assert p.stats()["tasks_cancelled"] >= len(queued)

    def test_await_termination_times_out_on_live_pool(self):
        with ForkJoinPool(parallelism=1, name="alive") as p:
            with pytest.raises(TaskTimeoutError):
                p.await_termination(timeout=0.05)

    def test_invoke_timeout(self):
        with ForkJoinPool(parallelism=1, name="slow") as p:
            with pytest.raises(TaskTimeoutError):
                p.invoke(_Sleep(0.5, value="late"), timeout=0.05)

    def test_external_join_timeout(self):
        with ForkJoinPool(parallelism=1, name="jt") as p:
            t = p.submit(_Sleep(0.5, value="late"))
            with pytest.raises(TaskTimeoutError):
                t.join(timeout=0.05)
            # The deadline does not poison the task: a patient join works.
            assert t.join(timeout=2.0) == "late"

    def test_worker_crash_is_contained_and_worker_respawns(self):
        p = ForkJoinPool(parallelism=2, name="crashy")
        try:
            original = p._steal_for
            tripped = threading.Event()

            def sabotage(thief):
                if not tripped.is_set():
                    tripped.set()
                    raise RuntimeError("injected scheduler crash")
                return original(thief)

            p._steal_for = sabotage
            assert tripped.wait(timeout=2.0)  # an idle worker hit the bomb
            # The pool still computes correctly with its full width.
            out = (
                Stream.range(0, 10_000).parallel().with_pool(p).map(lambda x: x + 1).sum()
            )
            assert out == sum(range(1, 10_001))
            stats = p.stats()
            assert stats["worker_crashes"] == 1
        finally:
            p.shutdown()
        assert p.is_terminated()


# -- seeded chaos -------------------------------------------------------------
#
# Evaluation point -1.0 with small integer coefficients keeps float
# arithmetic exact *and* position-sensitive, so "returns the unfaulted
# value" is an equality assertion, not an approx one.


def _coeffs(n):
    return [float((i * 37) % 19 - 9) for i in range(n)]


CHAOS_SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,37,58,71").split(",")]

_SCENARIOS = {
    "leaf-raise": lambda seed: FaultPlan(seed, name="leaf-raise").inject(
        "leaf:*", "raise", probability=0.25
    ),
    "combiner-raise": lambda seed: FaultPlan(seed, name="combiner-raise").inject(
        "combine:*", "raise", probability=0.25
    ),
    "worker-kill": lambda seed: FaultPlan(seed, name="worker-kill").inject(
        "worker:*", "kill", times=1
    ),
    "delay": lambda seed: FaultPlan(seed, name="delay").inject(
        "leaf:*", "delay", delay=0.0005, probability=0.1
    ),
}


class TestChaosMatrix:
    """Seed × scenario sweep at 2^14: resilience policies must restore the
    exact result; without them, injected raises must propagate."""

    N = 1 << 14

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
    def test_parity_with_policies(self, pool, seed, scenario):
        coeffs = _coeffs(self.N)
        expected = horner(coeffs, -1.0)
        plan = _SCENARIOS[scenario](seed)
        with fault_injection(plan):
            out = polynomial_value(
                coeffs, -1.0, pool=pool,
                retry=RetryPolicy(max_attempts=3), fallback=True,
            )
        assert out == expected

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("scenario", ["leaf-raise", "combiner-raise"])
    def test_fail_fast_without_policies(self, pool, seed, scenario):
        coeffs = _coeffs(self.N)
        plan = _SCENARIOS[scenario](seed)
        with fault_injection(plan):
            with pytest.raises(FaultInjected):
                polynomial_value(coeffs, -1.0, pool=pool)
        assert plan.stats()["injected"] >= 1

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_worker_kill_contained_without_policies(self, seed):
        # A kill between tasks is absorbed by crash containment: the
        # computation still completes, the worker respawns.
        coeffs = _coeffs(self.N)
        plan = _SCENARIOS["worker-kill"](seed)
        with ForkJoinPool(parallelism=4, name=f"chaos-kill-{seed}") as p:
            with fault_injection(plan):
                out = polynomial_value(coeffs, -1.0, pool=p)
            assert out == horner(coeffs, -1.0)
            assert p.stats()["worker_crashes"] >= 1


class TestChaosSoak:
    """The acceptance workload: a 2^18 polynomial under an aggressive
    seeded plan, swept over ``CHAOS_SEEDS``."""

    N = 1 << 18
    TARGET = 512  # 512 leaves — enough tree for the fail-fast assertion

    @staticmethod
    def _plan(seed):
        return (
            FaultPlan(seed, name=f"soak-{seed}")
            .inject("leaf:*", "raise", probability=0.3)
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_soak_resilient_leg(self, seed):
        coeffs = _coeffs(self.N)
        expected = horner(coeffs, -1.0)
        before = fault_policy.stats()
        plan = self._plan(seed)
        with ForkJoinPool(parallelism=4, name=f"soak-{seed}") as p:
            with fault_injection(plan):
                out = polynomial_value(
                    coeffs, -1.0, pool=p, target_size=self.TARGET,
                    retry=RetryPolicy(max_attempts=3), fallback=True,
                )
        after = fault_policy.stats()
        assert out == expected
        assert plan.stats()["injected"] > 0
        assert after["faults_injected"] - before["faults_injected"] > 0
        recoveries = (
            after["degraded_runs"] - before["degraded_runs"]
            + after["retries_attempted"] - before["retries_attempted"]
        )
        assert recoveries > 0

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_soak_fail_fast_leg(self, seed):
        coeffs = _coeffs(self.N)
        leaves = self.N // self.TARGET
        plan = self._plan(seed)
        with ForkJoinPool(parallelism=4, name=f"soak-ff-{seed}") as p:
            with fault_injection(plan):
                with pytest.raises(FaultInjected):
                    polynomial_value(coeffs, -1.0, pool=p, target_size=self.TARGET)
            stats = p.stats()
        # With strike probability 0.3 per leaf the first fault lands
        # within the first few executed leaves; fail-fast cancellation
        # must keep the rest of the tree from running.
        assert stats["tasks_executed"] < leaves // 4
        assert stats["failfast_cancellations"] >= 1
