"""Tests for two-dimensional PowerLists (Grid)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError, NotPowerOfTwoError
from repro.forkjoin import ForkJoinPool
from repro.powerlist.grid import (
    Grid,
    grid_add,
    matmul,
    parallel_matmul,
    transpose,
)


def square_grids(max_log=3):
    """Random 2^k × 2^k integer grids."""
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(
            st.lists(st.integers(-50, 50), min_size=2**k, max_size=2**k),
            min_size=2**k,
            max_size=2**k,
        )
    ).map(Grid.from_rows)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="grid")
    yield p
    p.shutdown()


class TestConstruction:
    def test_from_rows(self):
        g = Grid.from_rows([[1, 2], [3, 4]])
        assert g.get(0, 1) == 2
        assert g.get(1, 0) == 3
        assert g.to_rows() == [[1, 2], [3, 4]]

    def test_ragged_rejected(self):
        with pytest.raises(IllegalArgumentError):
            Grid.from_rows([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(IllegalArgumentError):
            Grid.from_rows([])

    def test_non_power_dims_rejected(self):
        with pytest.raises(NotPowerOfTwoError):
            Grid.from_rows([[1, 2, 3]])

    def test_filled_and_set(self):
        g = Grid.filled(0, 2, 2)
        g.set(1, 1, 9)
        assert g.to_rows() == [[0, 0], [0, 9]]

    def test_bounds(self):
        g = Grid.filled(0, 2, 2)
        with pytest.raises(IndexError):
            g.get(2, 0)
        with pytest.raises(IndexError):
            g.set(0, 2, 1)

    def test_eq_and_repr(self):
        assert Grid.from_rows([[1]]) == Grid.from_rows([[1]])
        assert Grid.from_rows([[1]]).__eq__(3) is NotImplemented
        assert repr(Grid.filled(0, 2, 4)) == "Grid(2x4)"
        with pytest.raises(TypeError):
            hash(Grid.filled(0, 1, 1))


class TestSplits:
    def setup_method(self):
        self.g = Grid.from_rows([[1, 2, 3, 4], [5, 6, 7, 8],
                                 [9, 10, 11, 12], [13, 14, 15, 16]])

    def test_tie_split_rows(self):
        top, bottom = self.g.tie_split_rows()
        assert top.to_rows() == [[1, 2, 3, 4], [5, 6, 7, 8]]
        assert bottom.to_rows() == [[9, 10, 11, 12], [13, 14, 15, 16]]

    def test_zip_split_rows(self):
        even, odd = self.g.zip_split_rows()
        assert even.to_rows() == [[1, 2, 3, 4], [9, 10, 11, 12]]
        assert odd.to_rows() == [[5, 6, 7, 8], [13, 14, 15, 16]]

    def test_tie_split_cols(self):
        left, right = self.g.tie_split_cols()
        assert left.to_rows() == [[1, 2], [5, 6], [9, 10], [13, 14]]
        assert right.to_rows() == [[3, 4], [7, 8], [11, 12], [15, 16]]

    def test_zip_split_cols(self):
        even, odd = self.g.zip_split_cols()
        assert even.to_rows() == [[1, 3], [5, 7], [9, 11], [13, 15]]
        assert odd.to_rows() == [[2, 4], [6, 8], [10, 12], [14, 16]]

    def test_quad_split(self):
        a, b, c, d = self.g.quad_split()
        assert a.to_rows() == [[1, 2], [5, 6]]
        assert b.to_rows() == [[3, 4], [7, 8]]
        assert c.to_rows() == [[9, 10], [13, 14]]
        assert d.to_rows() == [[11, 12], [15, 16]]

    def test_splits_share_storage(self):
        for part in self.g.quad_split():
            assert part.storage is self.g.storage

    def test_write_through_quadrant(self):
        _, _, _, d = self.g.quad_split()
        d.set(0, 0, 99)
        assert self.g.get(2, 2) == 99

    def test_single_row_col_refuse(self):
        g = Grid.from_rows([[1, 2]])
        with pytest.raises(IllegalArgumentError):
            g.tie_split_rows()
        h = Grid.from_rows([[1], [2]])
        with pytest.raises(IllegalArgumentError):
            h.tie_split_cols()


class TestTranspose:
    @given(square_grids())
    def test_matches_numpy(self, g):
        expected = np.array(g.to_rows()).T.tolist()
        assert transpose(g).to_rows() == expected

    @given(square_grids())
    def test_view_matches_recursive(self, g):
        assert g.transposed_view().to_rows() == transpose(g).to_rows()

    def test_view_is_zero_copy(self):
        g = Grid.from_rows([[1, 2], [3, 4]])
        assert g.transposed_view().storage is g.storage

    @given(square_grids(max_log=2))
    def test_involution(self, g):
        assert transpose(transpose(g)) == g

    def test_rectangular(self):
        g = Grid.from_rows([[1, 2, 3, 4], [5, 6, 7, 8]])
        assert g.transposed_view().to_rows() == [[1, 5], [2, 6], [3, 7], [4, 8]]


class TestMatmul:
    @given(square_grids(max_log=2), square_grids(max_log=2))
    @settings(deadline=None, max_examples=30)
    def test_matches_numpy(self, x, y):
        if x.cols != y.rows:
            return
        expected = (np.array(x.to_rows()) @ np.array(y.to_rows())).tolist()
        assert matmul(x, y).to_rows() == expected

    def test_identity(self):
        i2 = Grid.from_rows([[1, 0], [0, 1]])
        m = Grid.from_rows([[3, 4], [5, 6]])
        assert matmul(i2, m) == m
        assert matmul(m, i2) == m

    def test_shape_mismatch(self):
        with pytest.raises(IllegalArgumentError):
            matmul(Grid.filled(1, 2, 2), Grid.filled(1, 4, 4))

    def test_grid_add_similarity(self):
        with pytest.raises(IllegalArgumentError):
            grid_add(Grid.filled(1, 2, 2), Grid.filled(1, 4, 4))

    def test_threshold_variants_agree(self):
        rng = np.random.default_rng(7)
        x = Grid.from_rows(rng.integers(-5, 5, (8, 8)).tolist())
        y = Grid.from_rows(rng.integers(-5, 5, (8, 8)).tolist())
        assert matmul(x, y, threshold=1) == matmul(x, y, threshold=8)

    def test_parallel_matmul(self, pool):
        rng = np.random.default_rng(8)
        x = Grid.from_rows(rng.integers(-9, 9, (16, 16)).tolist())
        y = Grid.from_rows(rng.integers(-9, 9, (16, 16)).tolist())
        out = parallel_matmul(x, y, pool, threshold=4)
        expected = (np.array(x.to_rows()) @ np.array(y.to_rows())).tolist()
        assert out.to_rows() == expected

    def test_parallel_shape_mismatch(self, pool):
        with pytest.raises(IllegalArgumentError):
            parallel_matmul(Grid.filled(1, 2, 2), Grid.filled(1, 4, 4), pool)

    def test_transpose_product_law(self):
        # (XY)ᵀ = Yᵀ Xᵀ
        rng = np.random.default_rng(9)
        x = Grid.from_rows(rng.integers(-5, 5, (4, 4)).tolist())
        y = Grid.from_rows(rng.integers(-5, 5, (4, 4)).tolist())
        lhs = transpose(matmul(x, y))
        rhs = matmul(
            Grid.from_rows(y.transposed_view().to_rows()),
            Grid.from_rows(x.transposed_view().to_rows()),
        )
        assert lhs == rhs
