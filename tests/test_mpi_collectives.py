"""Tests for the simulated MPI collectives."""

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.mpi import CommModel
from repro.mpi.collectives import (
    allreduce,
    alltoall,
    bcast,
    gather,
    reduce,
    scatter,
)

COMM = CommModel(alpha=100, beta=1.0, element_bytes=8)


class TestBcast:
    def test_every_rank_receives(self):
        parts, _ = bcast([1, 2, 3], 4, COMM)
        assert parts == [[1, 2, 3]] * 4

    def test_time_log_rounds(self):
        _, t1 = bcast([1] * 10, 1, COMM)
        _, t8 = bcast([1] * 10, 8, COMM)
        assert t1 == 0
        assert t8 == 3 * COMM.element_message_time(10)

    def test_non_power_rank_count(self):
        _, t5 = bcast([1], 5, COMM)
        assert t5 == 3 * COMM.element_message_time(1)  # ceil(log2 5) = 3


class TestScatterGather:
    def test_scatter_partitions_in_order(self):
        parts, _ = scatter(list(range(8)), 4, COMM)
        assert parts == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_scatter_requires_divisibility(self):
        with pytest.raises(IllegalArgumentError):
            scatter([1, 2, 3], 2, COMM)

    def test_scatter_time_halves_per_round(self):
        _, t = scatter(list(range(16)), 4, COMM)
        expected = COMM.element_message_time(8) + COMM.element_message_time(4)
        assert t == expected

    @given(st.lists(st.integers(), min_size=8, max_size=64).filter(lambda l: len(l) % 8 == 0))
    def test_gather_inverts_scatter(self, data):
        parts, _ = scatter(data, 8, COMM)
        out, _ = gather(parts, COMM)
        assert out == data

    def test_gather_time_positive(self):
        _, t = gather([[1, 2], [3, 4]], COMM)
        assert t == COMM.element_message_time(2)


class TestReduce:
    def test_sum(self):
        out, _ = reduce([1, 2, 3, 4], operator.add, COMM)
        assert out == 10

    def test_non_commutative_order_preserved(self):
        out, _ = reduce(["a", "b", "c", "d"], operator.add, COMM)
        assert out == "abcd"

    def test_odd_rank_count(self):
        out, _ = reduce([1, 2, 3], operator.add, COMM)
        assert out == 6

    def test_single_rank_free(self):
        out, t = reduce([42], operator.add, COMM)
        assert out == 42
        assert t == 0

    def test_time_log_rounds(self):
        _, t = reduce(list(range(16)), operator.add, COMM)
        assert t == 4 * COMM.element_message_time(1)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40))
    def test_matches_builtin_sum(self, values):
        out, _ = reduce(values, operator.add, COMM)
        assert out == sum(values)


class TestAllreduce:
    def test_everyone_gets_total(self):
        out, t = allreduce([1, 2, 3, 4], operator.add, COMM)
        assert out == [10] * 4
        assert t > 0

    def test_time_is_reduce_plus_bcast(self):
        _, t_all = allreduce([1] * 8, operator.add, COMM)
        _, t_red = reduce([1] * 8, operator.add, COMM)
        _, t_bc = bcast([8], 8, COMM)
        assert t_all == t_red + t_bc


class TestAlltoall:
    def test_transposes_blocks(self):
        matrix = [[[i * 10 + j] for j in range(3)] for i in range(3)]
        out, _ = alltoall(matrix, COMM)
        assert out[1][2] == [21]  # rank 2's block destined for rank 1
        assert out[2][0] == [2]

    def test_requires_square(self):
        with pytest.raises(IllegalArgumentError):
            alltoall([[1, 2], [3]], COMM)

    def test_time_pairwise_rounds(self):
        matrix = [[[0, 0] for _ in range(4)] for _ in range(4)]
        _, t = alltoall(matrix, COMM)
        assert t == 3 * COMM.element_message_time(2)

    def test_double_transpose_identity(self):
        matrix = [[[i, j] for j in range(4)] for i in range(4)]
        once, _ = alltoall(matrix, COMM)
        twice, _ = alltoall(once, COMM)
        assert twice == matrix
