"""Tests for ``repro.serve`` — the multi-tenant execution service.

Admission control (bounds, quota, breaker, fast-fail hints), weighted
deficit-round-robin fairness, priority shedding, deadline cancellation
between admission and dispatch, graceful sequential degradation, the
per-tenant metrics surface, the asyncio facade, and the ``serve`` fault
sites.
"""

import asyncio
import threading
import time

import pytest

from repro.common import (
    IllegalArgumentError,
    RejectedExecutionError,
    TaskTimeoutError,
)
from repro.faults import Deadline, FaultInjected, FaultPlan, fault_injection
from repro.forkjoin import ForkJoinPool
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    SHED,
    CircuitOpenError,
    DeficitRoundRobin,
    ExecutionService,
    JobShedError,
    QueueFullError,
    QuotaExceededError,
    ServiceOverloadError,
    StreamServer,
    Tenant,
    TenantConfig,
)

DATA = list(range(1_000))
DATA_SUM = sum(DATA)


def sum_pipeline(stream):
    return stream.reduce(0, lambda a, b: a + b)


def failing_pipeline(stream):
    raise ValueError("tenant bug")


class _Blocker:
    """A pipeline that parks its runner thread until released."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, stream):
        self.entered.set()
        assert self.release.wait(10.0), "blocker never released"
        return "blocked-done"


@pytest.fixture
def service():
    svc = ExecutionService(max_workers=2, global_queue_limit=8)
    svc.register_dataset("numbers", DATA)
    svc.register_tenant("alice")
    svc.register_tenant("bob")
    yield svc
    svc.shutdown_now()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


# --------------------------------------------------------------------------- #
# Registration and the happy path
# --------------------------------------------------------------------------- #


class TestBasics:
    def test_submit_and_result(self, service):
        ticket = service.submit("alice", "numbers", sum_pipeline)
        assert ticket.result(timeout=10.0) == DATA_SUM
        assert ticket.state == DONE
        assert ticket.done

    def test_one_shot_iterator_dataset_is_materialized(self, service):
        service.register_dataset("gen", iter(range(100)))
        first = service.submit("alice", "gen", sum_pipeline).result(10.0)
        second = service.submit("bob", "gen", sum_pipeline).result(10.0)
        assert first == second == sum(range(100))

    def test_unknown_tenant_and_dataset(self, service):
        with pytest.raises(IllegalArgumentError, match="unknown tenant"):
            service.submit("mallory", "numbers", sum_pipeline)
        with pytest.raises(IllegalArgumentError, match="unknown dataset"):
            service.submit("alice", "nope", sum_pipeline)

    def test_duplicate_tenant_rejected(self, service):
        with pytest.raises(IllegalArgumentError, match="already registered"):
            service.register_tenant("alice")

    def test_tenant_config_validation(self):
        with pytest.raises(IllegalArgumentError):
            TenantConfig(name="")
        with pytest.raises(IllegalArgumentError):
            TenantConfig(name="t", weight=0)
        with pytest.raises(IllegalArgumentError):
            TenantConfig(name="t", queue_limit=0)
        with pytest.raises(IllegalArgumentError):
            TenantConfig(name="t", quota=0)
        with pytest.raises(IllegalArgumentError):
            TenantConfig(name="t", breaker_cooldown=0.0)

    def test_failed_job_reraises_from_result(self, service):
        ticket = service.submit("alice", "numbers", failing_pipeline)
        assert ticket.wait(10.0)
        assert ticket.state == FAILED
        with pytest.raises(ValueError, match="tenant bug"):
            ticket.result(0.0)

    def test_submit_after_shutdown_rejected(self):
        svc = ExecutionService(max_workers=1)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice")
        svc.shutdown()
        with pytest.raises(RejectedExecutionError):
            svc.submit("alice", "numbers", sum_pipeline)

    def test_shutdown_drains_queued_jobs(self):
        svc = ExecutionService(max_workers=1)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=8)
        tickets = [
            svc.submit("alice", "numbers", sum_pipeline) for _ in range(4)
        ]
        svc.shutdown()  # drain=True
        assert all(t.result(0.0) == DATA_SUM for t in tickets)

    def test_shutdown_now_cancels_queued_jobs(self):
        svc = ExecutionService(max_workers=1)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=8)
        blocker = _Blocker()
        running = svc.submit("alice", "numbers", blocker)
        assert blocker.entered.wait(5.0)
        queued = svc.submit("alice", "numbers", sum_pipeline)
        svc.shutdown_now()
        blocker.release.set()
        assert running.result(10.0) == "blocked-done"
        assert queued.wait(10.0)
        assert queued.state == CANCELLED


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #


class TestAdmission:
    def test_tenant_queue_full_fast_fails(self):
        svc = ExecutionService(max_workers=1, global_queue_limit=16)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=2)
        blocker = _Blocker()
        try:
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            svc.submit("alice", "numbers", sum_pipeline)
            svc.submit("alice", "numbers", sum_pipeline)
            with pytest.raises(QueueFullError) as info:
                svc.submit("alice", "numbers", sum_pipeline)
            assert info.value.retry_after > 0
            assert info.value.reason == "queue_full"
            assert isinstance(info.value, RejectedExecutionError)
            assert svc.stats()["tenants"]["alice"]["rejected"] == 1
        finally:
            blocker.release.set()
            svc.shutdown_now()

    def test_global_overload_without_priority_victim(self):
        svc = ExecutionService(max_workers=1, global_queue_limit=2)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=8)
        blocker = _Blocker()
        try:
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            svc.submit("alice", "numbers", sum_pipeline)
            svc.submit("alice", "numbers", sum_pipeline)
            # Equal priority everywhere: no shed victim, hard reject.
            with pytest.raises(ServiceOverloadError) as info:
                svc.submit("alice", "numbers", sum_pipeline)
            assert info.value.reason == "overload"
            assert info.value.retry_after > 0
        finally:
            blocker.release.set()
            svc.shutdown_now()

    def test_quota_sliding_window(self):
        svc = ExecutionService(max_workers=1, global_queue_limit=16)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", quota=2, quota_window=30.0, queue_limit=8)
        blocker = _Blocker()
        try:
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            svc.submit("alice", "numbers", sum_pipeline)
            with pytest.raises(QuotaExceededError) as info:
                svc.submit("alice", "numbers", sum_pipeline)
            assert info.value.reason == "quota"
            assert 0 < info.value.retry_after <= 30.0
        finally:
            blocker.release.set()
            svc.shutdown_now()

    def test_rejection_latency_is_fast(self):
        svc = ExecutionService(max_workers=1, global_queue_limit=16)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=1)
        blocker = _Blocker()
        try:
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            svc.submit("alice", "numbers", sum_pipeline)
            samples = []
            for _ in range(50):
                start = time.perf_counter_ns()
                with pytest.raises(QueueFullError):
                    svc.submit("alice", "numbers", sum_pipeline)
                samples.append(time.perf_counter_ns() - start)
            samples.sort()
            median_ms = samples[len(samples) // 2] / 1e6
            assert median_ms < 1.0, f"rejection median {median_ms:.3f}ms"
        finally:
            blocker.release.set()
            svc.shutdown_now()


# --------------------------------------------------------------------------- #
# Fair scheduling
# --------------------------------------------------------------------------- #


def _fake_tenants(*configs):
    tenants = {}
    drr = DeficitRoundRobin()
    for config in configs:
        tenants[config.name] = Tenant(config)
        drr.add(config.name)
    return drr, tenants


class TestDeficitRoundRobin:
    def test_equal_weights_alternate(self):
        drr, tenants = _fake_tenants(
            TenantConfig(name="a"), TenantConfig(name="b")
        )
        for tenant in tenants.values():
            tenant.queue.extend(range(10))
        order = []
        for _ in range(6):
            tenant = drr.select(tenants)
            tenant.queue.popleft()
            order.append(tenant.name)
        assert order.count("a") == 3
        assert order.count("b") == 3

    def test_weights_skew_dispatch_share(self):
        drr, tenants = _fake_tenants(
            TenantConfig(name="heavy", weight=2.0),
            TenantConfig(name="light", weight=1.0),
        )
        for tenant in tenants.values():
            tenant.queue.extend(range(100))
        served = {"heavy": 0, "light": 0}
        for _ in range(30):
            tenant = drr.select(tenants)
            tenant.queue.popleft()
            served[tenant.name] += 1
        assert served["heavy"] == 2 * served["light"]

    def test_idle_tenant_forfeits_deficit(self):
        drr, tenants = _fake_tenants(
            TenantConfig(name="a"), TenantConfig(name="b")
        )
        tenants["a"].queue.extend(range(10))
        for _ in range(5):
            assert drr.select(tenants).name == "a"
            tenants["a"].queue.popleft()
        # b was idle throughout: its deficit must not have accumulated.
        assert tenants["b"].deficit == 0.0

    def test_empty_ring_and_idle_queues(self):
        drr = DeficitRoundRobin()
        assert drr.select({}) is None
        drr, tenants = _fake_tenants(TenantConfig(name="a"))
        assert drr.select(tenants) is None

    def test_invalid_quantum(self):
        with pytest.raises(IllegalArgumentError):
            DeficitRoundRobin(quantum=0.0)

    def test_fairness_through_service(self):
        """Two equal-weight tenants each complete about half the jobs."""
        svc = ExecutionService(max_workers=1, global_queue_limit=32)
        svc.register_dataset("numbers", list(range(64)))
        svc.register_tenant("alice", queue_limit=16)
        svc.register_tenant("bob", queue_limit=16)
        blocker = _Blocker()
        tickets = []
        try:
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            for _ in range(8):
                tickets.append(svc.submit("alice", "numbers", sum_pipeline))
                tickets.append(svc.submit("bob", "numbers", sum_pipeline))
            blocker.release.set()
            for ticket in tickets:
                assert ticket.result(10.0) == sum(range(64))
            stats = svc.stats()["tenants"]
            assert stats["alice"]["completed"] == 9  # 8 jobs + the blocker
            assert stats["bob"]["completed"] == 8
        finally:
            blocker.release.set()
            svc.shutdown_now()


# --------------------------------------------------------------------------- #
# Load shedding
# --------------------------------------------------------------------------- #


class TestShedding:
    def _loaded_service(self):
        svc = ExecutionService(max_workers=1, global_queue_limit=2)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("cheap", priority=0, queue_limit=8)
        svc.register_tenant("vip", priority=10, queue_limit=8)
        return svc

    def test_higher_priority_sheds_lowest_latest(self):
        svc = self._loaded_service()
        blocker = _Blocker()
        try:
            svc.submit("cheap", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            older = svc.submit("cheap", "numbers", sum_pipeline)
            newer = svc.submit("cheap", "numbers", sum_pipeline)
            vip = svc.submit("vip", "numbers", sum_pipeline)
            # The latest-submitted lowest-priority job lost its slot.
            assert newer.wait(5.0)
            assert newer.state == SHED
            with pytest.raises(JobShedError):
                newer.result(0.0)
            assert not older.done
            blocker.release.set()
            assert vip.result(10.0) == DATA_SUM
            assert older.result(10.0) == DATA_SUM
            assert svc.stats()["tenants"]["cheap"]["shed"] == 1
        finally:
            blocker.release.set()
            svc.shutdown_now()

    def test_equal_priority_never_sheds(self):
        svc = self._loaded_service()
        blocker = _Blocker()
        try:
            svc.submit("vip", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            svc.submit("vip", "numbers", sum_pipeline)
            svc.submit("vip", "numbers", sum_pipeline)
            with pytest.raises(ServiceOverloadError):
                svc.submit("vip", "numbers", sum_pipeline)
        finally:
            blocker.release.set()
            svc.shutdown_now()

    def test_explicit_priority_overrides_tenant_default(self):
        svc = self._loaded_service()
        blocker = _Blocker()
        try:
            svc.submit("cheap", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            victim = svc.submit("cheap", "numbers", sum_pipeline)
            svc.submit("cheap", "numbers", sum_pipeline, priority=5)
            shed_by = svc.submit("cheap", "numbers", sum_pipeline, priority=7)
            assert victim.wait(5.0)
            assert victim.state == SHED
            assert not shed_by.done or shed_by.state != SHED
        finally:
            blocker.release.set()
            svc.shutdown_now()


# --------------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_consecutive_failures_open_the_circuit(self):
        svc = ExecutionService(max_workers=1)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant(
            "alice", breaker_threshold=2, breaker_cooldown=30.0, queue_limit=8
        )
        try:
            first = svc.submit("alice", "numbers", failing_pipeline)
            assert first.wait(10.0)
            second = svc.submit("alice", "numbers", failing_pipeline)
            assert second.wait(10.0)
            with pytest.raises(CircuitOpenError) as info:
                svc.submit("alice", "numbers", sum_pipeline)
            assert info.value.reason == "circuit_open"
            assert 0 < info.value.retry_after <= 30.0
            assert svc.stats()["tenants"]["alice"]["breaker_trips"] == 1
        finally:
            svc.shutdown_now()

    def test_success_resets_the_streak(self):
        svc = ExecutionService(max_workers=1)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant(
            "alice", breaker_threshold=2, breaker_cooldown=30.0, queue_limit=8
        )
        try:
            fail = svc.submit("alice", "numbers", failing_pipeline)
            assert fail.wait(10.0)
            ok = svc.submit("alice", "numbers", sum_pipeline)
            assert ok.result(10.0) == DATA_SUM
            # Streak broken: one more failure must not open the circuit.
            fail = svc.submit("alice", "numbers", failing_pipeline)
            assert fail.wait(10.0)
            svc.submit("alice", "numbers", sum_pipeline).result(10.0)
        finally:
            svc.shutdown_now()

    def test_cooldown_backoff_doubles_and_caps(self):
        tenant = Tenant(
            TenantConfig(name="t", breaker_threshold=1, breaker_cooldown=10.0)
        )
        assert tenant.record_failure(now=100.0)
        assert tenant.breaker_open(now=100.0) == pytest.approx(10.0)
        assert tenant.record_failure(now=200.0)
        assert tenant.breaker_open(now=200.0) == pytest.approx(20.0)
        assert tenant.record_failure(now=300.0)
        assert tenant.breaker_open(now=300.0) == pytest.approx(40.0)
        assert tenant.record_failure(now=400.0)
        # 80s exceeds the cap: clamped to BREAKER_MAX_COOLDOWN.
        assert tenant.breaker_open(now=400.0) == pytest.approx(60.0)
        tenant.record_success()
        assert tenant.record_failure(now=500.0)
        assert tenant.breaker_open(now=500.0) == pytest.approx(10.0)


# --------------------------------------------------------------------------- #
# Deadlines: expiry between admission and dispatch (satellite)
# --------------------------------------------------------------------------- #


class TestQueuedDeadline:
    def test_deadline_expiring_in_queue_cancels_before_dispatch(self):
        pool = ForkJoinPool(parallelism=2, name="serve-deadline")
        svc = ExecutionService(max_workers=1, pool=pool)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice", queue_limit=8)
        blocker = _Blocker()
        try:
            cancelled_before = pool.stats()["tasks_cancelled"]
            svc.submit("alice", "numbers", blocker)
            assert blocker.entered.wait(5.0)
            doomed = svc.submit(
                "alice", "numbers", sum_pipeline, deadline=0.05
            )
            time.sleep(0.15)  # let the deadline lapse while queued
            blocker.release.set()
            assert doomed.wait(10.0)
            assert doomed.state == CANCELLED
            with pytest.raises(TaskTimeoutError, match="while queued"):
                doomed.result(0.0)
            # Cancelled at the serve layer: the pool never saw the job.
            assert svc.stats()["tenants"]["alice"]["cancelled"] == 1
            assert pool.stats()["tasks_cancelled"] == cancelled_before
        finally:
            blocker.release.set()
            svc.shutdown_now()
            pool.shutdown()

    def test_live_deadline_reaches_the_stream(self, service):
        deadline = Deadline.after(30.0)
        ticket = service.submit(
            "alice", "numbers", sum_pipeline, deadline=deadline
        )
        assert ticket.result(10.0) == DATA_SUM


# --------------------------------------------------------------------------- #
# Graceful degradation
# --------------------------------------------------------------------------- #


class TestDegradation:
    def test_shutdown_pool_degrades_to_sequential(self):
        pool = ForkJoinPool(parallelism=2, name="serve-degrade")
        pool.shutdown()
        svc = ExecutionService(max_workers=1, pool=pool)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice")
        try:
            ticket = svc.submit("alice", "numbers", sum_pipeline)
            assert ticket.result(10.0) == DATA_SUM
            assert svc.stats()["tenants"]["alice"]["degraded"] == 1
        finally:
            svc.shutdown_now()

    def test_degraded_job_still_honors_deadline(self):
        pool = ForkJoinPool(parallelism=2, name="serve-degrade-dl")
        pool.shutdown()
        svc = ExecutionService(max_workers=1, pool=pool)
        svc.register_dataset("numbers", DATA)
        svc.register_tenant("alice")
        try:
            expired = Deadline.after(0.005)
            time.sleep(0.05)
            ticket = svc.submit(
                "alice", "numbers", sum_pipeline, deadline=expired
            )
            assert ticket.wait(10.0)
            assert ticket.state in (FAILED, CANCELLED)
        finally:
            svc.shutdown_now()


# --------------------------------------------------------------------------- #
# Metrics and stats
# --------------------------------------------------------------------------- #


class TestObservability:
    def test_stats_shape(self, service):
        service.submit("alice", "numbers", sum_pipeline).result(10.0)
        stats = service.stats()
        assert set(stats) == {"in_flight", "queued", "tenants"}
        alice = stats["tenants"]["alice"]
        assert alice["completed"] == 1
        assert alice["submitted"] == 1
        assert alice["failed"] == 0
        assert alice["p50_latency_ms"] > 0
        assert "bob" in stats["tenants"]

    def test_prometheus_exposition(self, service):
        service.submit("alice", "numbers", sum_pipeline).result(10.0)
        service.register_tenant("tiny", queue_limit=1)
        blockers = [_Blocker(), _Blocker()]  # occupy both runner threads
        try:
            for blocker in blockers:
                service.submit("tiny", "numbers", blocker)
                assert blocker.entered.wait(5.0)
            service.submit("tiny", "numbers", sum_pipeline)
            with pytest.raises(QueueFullError):
                service.submit("tiny", "numbers", sum_pipeline)
        finally:
            for blocker in blockers:
                blocker.release.set()
        text = service.metrics_text()
        assert 'jobs_submitted_total{tenant="alice"}' in text
        assert 'jobs_completed_total{tenant="alice"}' in text
        assert 'reason="queue_full"' in text
        assert "serve_job_latency_ns_bucket" in text
        assert "serve_in_flight" in text

    def test_queue_wait_histogram_recorded(self, service):
        service.submit("alice", "numbers", sum_pipeline).result(10.0)
        assert (
            'serve_queue_wait_ns_count{tenant="alice"} 1'
            in service.metrics_text()
        )


# --------------------------------------------------------------------------- #
# asyncio facade
# --------------------------------------------------------------------------- #


class TestStreamServer:
    def test_concurrent_async_submissions(self):
        async def scenario():
            async with StreamServer(
                max_workers=2, global_queue_limit=32
            ) as server:
                server.register_dataset("numbers", DATA)
                server.register_tenant("alice", queue_limit=16)
                server.register_tenant("bob", queue_limit=16)
                results = await asyncio.gather(*[
                    server.submit(
                        "alice" if i % 2 == 0 else "bob",
                        "numbers", sum_pipeline,
                    )
                    for i in range(10)
                ])
                return results

        results = asyncio.run(scenario())
        assert results == [DATA_SUM] * 10

    def test_async_admission_error_raises(self):
        async def scenario():
            async with StreamServer(max_workers=1) as server:
                server.register_dataset("numbers", DATA)
                server.register_tenant("alice", quota=1, quota_window=30.0)
                blocker = _Blocker()
                task = asyncio.ensure_future(
                    server.submit("alice", "numbers", blocker)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, blocker.entered.wait, 5.0
                )
                try:
                    with pytest.raises(QuotaExceededError):
                        await server.submit("alice", "numbers", sum_pipeline)
                finally:
                    blocker.release.set()
                return await task

        assert asyncio.run(scenario()) == "blocked-done"

    def test_async_failure_propagates(self):
        async def scenario():
            async with StreamServer(max_workers=1) as server:
                server.register_dataset("numbers", DATA)
                server.register_tenant("alice")
                with pytest.raises(ValueError, match="tenant bug"):
                    await server.submit("alice", "numbers", failing_pipeline)

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# Fault sites
# --------------------------------------------------------------------------- #


class TestServeFaultSites:
    def test_admit_site_raise(self, service):
        plan = FaultPlan(seed=7).inject(
            "serve:admit:alice", "raise", times=1, exc=FaultInjected("gate")
        )
        with fault_injection(plan):
            with pytest.raises(FaultInjected):
                service.submit("alice", "numbers", sum_pipeline)
            # Only alice's gate is struck; bob sails through.
            assert (
                service.submit("bob", "numbers", sum_pipeline).result(10.0)
                == DATA_SUM
            )
        assert plan.stats()["by_site"]["serve:admit:alice"] == 1

    def test_dispatch_site_fails_the_job(self, service):
        plan = FaultPlan(seed=7).inject(
            "serve:dispatch:alice", "raise", times=1,
            exc=FaultInjected("dispatcher"),
        )
        with fault_injection(plan):
            ticket = service.submit("alice", "numbers", sum_pipeline)
            assert ticket.wait(10.0)
        assert ticket.state == FAILED
        with pytest.raises(FaultInjected):
            ticket.result(0.0)
        # The service stays healthy for the next job.
        assert (
            service.submit("alice", "numbers", sum_pipeline).result(10.0)
            == DATA_SUM
        )

    def test_admit_site_delay_still_admits(self, service):
        plan = FaultPlan(seed=7).inject(
            "serve:admit:alice", "delay", times=1, delay=0.02
        )
        with fault_injection(plan):
            start = time.perf_counter()
            ticket = service.submit("alice", "numbers", sum_pipeline)
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.02
        assert ticket.result(10.0) == DATA_SUM
