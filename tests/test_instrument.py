"""Tests for instrumented decomposition recording and replay."""

import pytest

from repro.core import IdentityCollector, PowerMapCollector
from repro.forkjoin import ForkJoinPool
from repro.simcore import CostModel, SimMachine, build_dc_dag
from repro.simcore.instrument import (
    dag_from_recording,
    record_decomposition,
)
from repro.streams import Collectors, ListSpliterator
from repro.streams.stream_support import StreamSupport


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="instr")
    yield p
    p.shutdown()


def run_recorded_collect(data, collector, pool, target_size):
    """Run a real parallel collect through a recording spliterator."""
    inner = collector.create_spliterator(data)
    wrapped, recording = record_decomposition(inner)
    stream = (
        StreamSupport.stream(wrapped, parallel=True)
        .with_pool(pool)
        .with_target_size(target_size)
    )
    result = stream.collect(collector)
    return result, recording


class TestRecording:
    def test_sequential_no_splits(self):
        wrapped, recording = record_decomposition(ListSpliterator(list(range(8))))
        out = []
        wrapped.for_each_remaining(out.append)
        assert out == list(range(8))
        assert recording.splits() == []
        assert recording.total_elements() == 8

    def test_parallel_records_real_shape(self, pool):
        data = list(range(256))
        result, recording = run_recorded_collect(
            data, IdentityCollector("tie"), pool, target_size=32
        )
        assert result == data
        assert len(recording.leaves()) == 256 // 32
        assert len(recording.splits()) == 256 // 32 - 1
        assert recording.total_elements() == 256

    def test_zip_strides_recorded(self, pool):
        data = list(range(64))
        result, recording = run_recorded_collect(
            data, IdentityCollector("zip"), pool, target_size=16
        )
        assert result == data
        leaf_strides = {n.stride for n in recording.leaves()}
        assert leaf_strides == {4}  # 64/16 = 4 leaves → stride 4 at depth 2

    def test_every_element_traversed_once(self, pool):
        data = list(range(128))
        result, recording = run_recorded_collect(
            data, PowerMapCollector(lambda x: x, "tie"), pool, target_size=8
        )
        assert result == data
        assert recording.total_elements() == 128

    def test_try_advance_counted(self):
        wrapped, recording = record_decomposition(ListSpliterator([1, 2, 3]))
        while wrapped.try_advance(lambda x: None):
            pass
        assert recording.total_elements() == 3

    def test_characteristics_pass_through(self):
        from repro.streams import Characteristics

        wrapped, _ = record_decomposition(ListSpliterator(list(range(8))))
        assert wrapped.has_characteristics(Characteristics.POWER2)
        assert wrapped.estimate_size() == 8


class TestDagFromRecording:
    def test_matches_analytic_dag(self, pool):
        n, target = 256, 16
        model = CostModel()
        _, recording = run_recorded_collect(
            list(range(n)), IdentityCollector("tie"), pool, target_size=target
        )
        observed = dag_from_recording(recording, model)
        analytic = build_dc_dag(n, target, model, "tie")
        assert observed.leaf_count() == analytic.leaf_count()
        assert observed.total_work() == pytest.approx(analytic.total_work())
        assert observed.critical_path() == pytest.approx(analytic.critical_path())

    def test_observed_dag_schedulable(self, pool):
        _, recording = run_recorded_collect(
            list(range(128)), IdentityCollector("zip"), pool, target_size=8
        )
        dag = dag_from_recording(recording, CostModel())
        dag.validate()
        result = SimMachine(8).run(dag)
        assert result.makespan > 0
        executed = sorted(t.sid for t in result.trace)
        assert executed == list(range(len(dag.strands)))

    def test_empty_recording_rejected(self):
        from repro.common import IllegalStateError
        from repro.simcore.instrument import Recording

        with pytest.raises(IllegalStateError):
            dag_from_recording(Recording(), CostModel())

    def test_batching_iterator_source_observable(self, pool):
        # A source the analytic builder cannot model: the batching
        # IteratorSpliterator.  The recording is the ground truth.
        from repro.streams import IteratorSpliterator

        wrapped, recording = record_decomposition(
            IteratorSpliterator(iter(range(5000)))
        )
        out = (
            StreamSupport.stream(wrapped, parallel=True)
            .with_pool(pool)
            .collect(Collectors.counting())
        )
        assert out == 5000
        assert recording.total_elements() == 5000
        dag = dag_from_recording(recording, CostModel())
        assert SimMachine(4).run(dag).makespan > 0
