"""Stateful (model-based) testing of PowerList views.

A hypothesis rule-based state machine drives a random sequence of view
operations (splits, writes through views, reassembly) against a plain
Python-list model, verifying that the zero-copy view discipline never
diverges from copy semantics.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.powerlist import PowerList, tie, zip_


class PowerListViews(RuleBasedStateMachine):
    """Model: every live view is tracked with the index list it covers."""

    views = Bundle("views")

    def __init__(self):
        super().__init__()
        self.storage = list(range(32))
        self.shadow = list(self.storage)  # model of the storage

    @rule(target=views)
    def root_view(self):
        return (PowerList(self.storage), list(range(32)))

    @rule(target=views, view=views)
    def tie_left(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        left, _ = p.tie_split()
        return (left, idx[: len(idx) // 2])

    @rule(target=views, view=views)
    def tie_right(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        _, right = p.tie_split()
        return (right, idx[len(idx) // 2 :])

    @rule(target=views, view=views)
    def zip_even(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        even, _ = p.zip_split()
        return (even, idx[0::2])

    @rule(target=views, view=views)
    def zip_odd(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        _, odd = p.zip_split()
        return (odd, idx[1::2])

    @rule(view=views, position=st.integers(0, 31), value=st.integers(-999, 999))
    def write_through_view(self, view, position, value):
        p, idx = view
        i = position % len(p)
        p[i] = value
        self.shadow[idx[i]] = value

    @rule(target=views, view=views)
    def reassemble_tie(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        left, right = p.tie_split()
        return (tie(left, right), idx)

    @rule(target=views, view=views)
    def reassemble_zip(self, view):
        p, idx = view
        if p.is_singleton():
            return view
        even, odd = p.zip_split()
        return (zip_(even, odd), idx)

    @invariant()
    def storage_matches_shadow(self):
        assert self.storage == self.shadow

    @rule(view=views)
    def view_matches_model(self, view):
        p, idx = view
        assert list(p) == [self.shadow[i] for i in idx]


PowerListViews.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestPowerListViews = PowerListViews.TestCase
