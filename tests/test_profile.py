"""Tests for the run profiler (``repro.obs.profile``)."""

import pytest

from repro.forkjoin import ForkJoinPool
from repro.obs import (
    DEFAULT_PROFILE_SAMPLE,
    Profiler,
    RunProfile,
    current_profiler,
    profiled,
    set_profiler,
)
from repro.streams import Stream, bulk_stats, fusion_stats
from repro.streams.stream_support import stream_of


def _triple(x):
    return x * 3


def _even(x):
    return x & 1 == 0


class TestLifecycle:
    def test_disabled_by_default(self):
        assert current_profiler() is None

    def test_profiled_installs_and_restores(self):
        with profiled() as profile:
            assert isinstance(profile, RunProfile)
            assert current_profiler() is not None
            assert current_profiler().profile is profile
        assert current_profiler() is None

    def test_nested_profiled_restores_outer(self):
        with profiled() as outer:
            with profiled() as inner:
                assert current_profiler().profile is inner
            assert current_profiler().profile is outer
        assert current_profiler() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiled():
                raise RuntimeError("boom")
        assert current_profiler() is None

    def test_set_profiler_returns_previous(self):
        profiler = Profiler(sample_rate=1)
        previous = set_profiler(profiler)
        try:
            assert previous is None
            assert current_profiler() is profiler
        finally:
            set_profiler(previous)

    def test_default_sample_rate(self):
        with profiled() as profile:
            assert profile.sample_rate == DEFAULT_PROFILE_SAMPLE
        with profiled(sample=3) as profile:
            assert profile.sample_rate == 3


class TestSequentialAttribution:
    def test_stage_attribution_and_modes(self):
        with profiled(sample=1) as profile:
            result = Stream.range(0, 1024).map(_triple).filter(_even).to_list()
        assert result == [x * 3 for x in range(1024) if (x * 3) % 2 == 0]
        d = profile.to_dict()
        assert d["traversals"] == 1
        assert d["sampled_traversals"] == 1
        assert d["modes"] == {"chunked": 1, "element": 0, "short_circuit": 0}
        assert d["fused_kernels"] == 1
        # Stage keys: position:label, outermost first.
        assert list(d["stages"]) == [
            "0:fused(map|filter)",
            "1:terminal:AccumulatorSink",
        ]
        fused = d["stages"]["0:fused(map|filter)"]
        assert fused["elements"] == 1024
        assert fused["chunks"] == 1
        assert fused["traversals"] == 1
        assert fused["self_ns"] >= 0
        # The terminal sees only what the filter let through.
        assert d["stages"]["1:terminal:AccumulatorSink"]["elements"] == 512

    def test_counted_limit_rides_chunked_mode(self):
        # A fused counted kernel absorbs the limit, so the chain takes
        # the chunked path instead of per-element short-circuiting; the
        # window still cuts the traversal at exactly 3 elements.
        with profiled(sample=1) as profile:
            assert Stream.range(0, 4096).map(_triple).limit(3).to_list() == [
                0,
                3,
                6,
            ]
        d = profile.to_dict()
        assert d["modes"]["chunked"] == 1
        assert d["modes"]["short_circuit"] == 0
        assert d["fused_kernels"] == 1
        assert list(d["stages"]) == [
            "0:fused(map|limit)",
            "1:terminal:AccumulatorSink",
        ]
        # The kernel sees the raw source chunk (attribution counts stage
        # *input*); the window cut means the terminal sees exactly 3.
        assert d["stages"]["1:terminal:AccumulatorSink"]["elements"] == 3

    def test_short_circuit_mode_counted(self):
        # take_while cannot fuse into a counted kernel, so a genuine
        # short-circuit traversal still happens (and is attributed).
        with profiled(sample=1) as profile:
            assert (
                Stream.range(0, 4096)
                .map(_triple)
                .take_while(lambda x: x < 9)
                .to_list()
            ) == [0, 3, 6]
        d = profile.to_dict()
        assert d["modes"]["short_circuit"] == 1

    def test_profiled_run_matches_unprofiled_stats(self):
        """The profiled path must take the same traversal mode and fusion
        decisions as the unprofiled one."""
        fusion_stats(reset=True)
        before = bulk_stats()
        plain = Stream.range(0, 512).map(_triple).filter(_even).to_list()
        mid = bulk_stats()
        with profiled(sample=1):
            prof = Stream.range(0, 512).map(_triple).filter(_even).to_list()
        after = bulk_stats()
        assert plain == prof
        assert {k: mid[k] - before[k] for k in mid} == {
            k: after[k] - mid[k] for k in after
        }

    def test_sampling_skips_attribution_but_counts_totals(self):
        with profiled(sample=2) as profile:
            for _ in range(4):
                Stream.range(0, 64).map(_triple).sum()
        d = profile.to_dict()
        assert d["traversals"] == 4
        assert d["sampled_traversals"] == 2  # ticks 0 and 2
        assert d["modes"]["chunked"] == 4
        assert d["stages"]["0:map"]["traversals"] == 2

    def test_hot_stages_ranking(self):
        profile = RunProfile(sample_rate=1)
        profile.record_stage("0:cheap", 10, elements=1)
        profile.record_stage("1:costly", 1000, elements=1)
        ranked = profile.hot_stages()
        assert [name for name, _ in ranked] == ["1:costly", "0:cheap"]
        assert profile.hot_stages(limit=1) == ranked[:1]


class TestParallelAttribution:
    def test_leaves_and_pool_deltas(self):
        with ForkJoinPool(parallelism=2, name="prof-test") as pool:
            with profiled(sample=1, pool=pool) as profile:
                total = (
                    Stream.range(0, 4096)
                    .parallel()
                    .with_pool(pool)
                    .with_target_size(512)
                    .map(_triple)
                    .sum()
                )
        assert total == sum(x * 3 for x in range(4096))
        d = profile.to_dict()
        assert d["leaves"] == 8
        assert d["traversals"] == 8
        assert d["leaf_duration_ns"]["count"] == 8
        assert d["leaf_duration_ns"]["p50_bound"] > 0
        assert d["chunk_sizes"]["count"] == 8
        assert d["pool"]["pool"] == "prof-test"
        assert d["pool"]["parallelism"] == 2
        # Deltas for this run only: exactly the 8 leaf tasks.
        assert d["pool"]["tasks_executed"] == 8

    def test_pool_attaches_automatically_from_run(self):
        with ForkJoinPool(parallelism=2, name="auto-attach") as pool:
            with profiled(sample=1) as profile:
                stream_of(list(range(1024)), parallel=True, pool=pool).map(
                    _triple
                ).sum()
        assert profile.to_dict()["pool"].get("pool") == "auto-attach"

    def test_pool_histogram_fed_by_profiled_leaves(self):
        with ForkJoinPool(parallelism=2, name="hist-feed") as pool:
            with profiled(sample=1):
                (
                    Stream.range(0, 2048)
                    .parallel()
                    .with_pool(pool)
                    .with_target_size(512)
                    .map(_triple)
                    .sum()
                )
            snap = pool.metrics.snapshot()
        key = 'leaf_duration_ns{pool="hist-feed"}'
        assert snap[key]["count"] == 4


class TestStreamProfileMethod:
    def test_returns_result_and_profile(self):
        result, profile = (
            Stream.range(0, 256)
            .map(_triple)
            .profile(lambda s: s.to_list(), sample=1)
        )
        assert result == [x * 3 for x in range(256)]
        assert isinstance(profile, RunProfile)
        assert profile.to_dict()["traversals"] == 1
        assert current_profiler() is None

    def test_parallel_stream_profile_attaches_pool(self):
        with ForkJoinPool(parallelism=2, name="sp-prof") as pool:
            total, profile = (
                Stream.range(0, 1024)
                .parallel()
                .with_pool(pool)
                .map(_triple)
                .profile(lambda s: s.sum(), sample=1)
            )
        assert total == sum(x * 3 for x in range(1024))
        assert profile.to_dict()["pool"].get("pool") == "sp-prof"


class TestReport:
    def test_report_text(self):
        with profiled(sample=1) as profile:
            Stream.range(0, 128).map(_triple).filter(_even).count()
        text = profile.report()
        assert "traversal(s)" in text
        assert "hot stages" in text
        assert "fused(map|filter)" in text

    def test_empty_profile_report(self):
        profile = RunProfile(sample_rate=4)
        text = profile.report()
        assert "0 traversal(s)" in text
        d = profile.to_dict()
        assert d["leaf_duration_ns"]["count"] == 0
        assert d["stages"] == {}


class TestProcessExecutorStats:
    def test_stats_keys_unchanged_and_labeled(self):
        from repro.jplf.process_executor import ProcessExecutor

        executor = ProcessExecutor(processes=2)
        try:
            assert executor.stats() == {
                "runs": 0,
                "retries": 0,
                "degraded_runs": 0,
                "broken_pools": 0,
                "deadline_timeouts": 0,
                "workers": {},
            }
            snap = executor.metrics.snapshot()
            assert 'runs{pool="process",processes="2"}' in snap
        finally:
            executor.shutdown()
