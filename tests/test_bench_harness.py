"""Tests for the bench harness: workloads, timing, reporting, figures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import (
    format_table,
    random_coefficients,
    random_complex_signal,
    random_integers,
    repeat_average,
    time_call,
)
from repro.bench.figures import (
    FIG34_SIZES,
    ab1_streams_vs_jplf_series,
    ab2_fft_series,
    ab3_tie_vs_zip_series,
    ab4_threshold_series,
    ab6_nway_series,
    fig3_fig4_series,
)
from repro.common import IllegalArgumentError


class TestWorkloads:
    def test_coefficients_reproducible(self):
        assert random_coefficients(16, seed=1) == random_coefficients(16, seed=1)
        assert random_coefficients(16, seed=1) != random_coefficients(16, seed=2)

    def test_coefficients_bounded(self):
        for c in random_coefficients(100, lo=-2, hi=3):
            assert -2 <= c < 3

    def test_complex_signal(self):
        signal = random_complex_signal(8)
        assert len(signal) == 8
        assert all(isinstance(v, complex) for v in signal)

    def test_integers_bounds(self):
        for v in random_integers(50, lo=5, hi=9):
            assert 5 <= v <= 9

    @pytest.mark.parametrize("factory", [random_coefficients, random_complex_signal, random_integers])
    def test_positive_size_required(self, factory):
        with pytest.raises(IllegalArgumentError):
            factory(0)


class TestHarness:
    def test_time_call_returns_result(self):
        result, elapsed = time_call(lambda: 42)
        assert result == 42
        assert elapsed >= 0

    def test_repeat_average_five_runs(self):
        timing = repeat_average(lambda: sum(range(1000)), runs=5)
        assert timing.runs == 5
        assert timing.mean > 0
        assert timing.minimum <= timing.mean
        assert timing.mean_ms == pytest.approx(timing.mean * 1e3)

    def test_single_run_no_stdev(self):
        timing = repeat_average(lambda: None, runs=1)
        assert timing.stdev == 0.0

    def test_runs_validated(self):
        with pytest.raises(IllegalArgumentError):
            repeat_average(lambda: None, runs=0)

    def test_all_samples_recorded(self):
        timing = repeat_average(lambda: sum(range(100)), runs=4)
        assert len(timing.samples) == 4
        assert timing.minimum == min(timing.samples)
        assert timing.maximum == max(timing.samples)
        assert timing.minimum <= timing.median <= timing.maximum
        assert timing.median_ms == pytest.approx(timing.median * 1e3)

    def test_trace_kwarg_writes_chrome_json(self, tmp_path):
        import json

        from repro.forkjoin import ForkJoinPool
        from repro.streams import Stream

        path = tmp_path / "run.json"
        with ForkJoinPool(parallelism=2, name="trace") as pool:
            timing = repeat_average(
                lambda: Stream.range(0, 4096).parallel().with_pool(pool).sum(),
                runs=2,
                trace=path,
            )
        assert timing.runs == 2  # the traced run is extra, not a sample
        doc = json.loads(path.read_text())
        kinds = {e["cat"] for e in doc["traceEvents"]}
        assert "leaf" in kinds

    def test_profile_kwarg_writes_json_profile(self, tmp_path):
        import json

        from repro.streams import Stream

        path = tmp_path / "profile.json"
        timing = repeat_average(
            lambda: Stream.range(0, 1024).map(lambda x: x * 2).sum(),
            runs=2,
            profile=path,
            profile_sample=1,
        )
        assert timing.runs == 2  # the profiled run is extra, not a sample
        doc = json.loads(path.read_text())
        assert doc["traversals"] == 1
        assert "0:map" in doc["stages"]

    def test_profile_kwarg_writes_text_report(self, tmp_path):
        from repro.streams import Stream

        path = tmp_path / "profile.txt"
        repeat_average(
            lambda: Stream.range(0, 256).sum(),
            runs=1,
            profile=path,
            profile_sample=1,
        )
        assert "traversal(s)" in path.read_text()

    def test_trace_and_profile_share_one_extra_run(self, tmp_path):
        import json

        from repro.streams import Stream

        trace_path = tmp_path / "run.json"
        profile_path = tmp_path / "profile.json"
        repeat_average(
            lambda: Stream.range(0, 512).map(lambda x: x + 1).sum(),
            runs=1,
            trace=trace_path,
            profile=profile_path,
            profile_sample=1,
        )
        trace_doc = json.loads(trace_path.read_text())
        profile_doc = json.loads(profile_path.read_text())
        # The Chrome trace is enriched with the same profile dict.
        assert trace_doc["otherData"]["profile"] == profile_doc

    def test_from_samples_rejects_empty(self):
        from repro.bench import TimingResult

        with pytest.raises(ValueError):
            TimingResult.from_samples([])


class TestReporting:
    def test_basic_table(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4000.0]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "bb" in lines[0]
        assert "4,000" in lines[3]

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_empty_rows(self):
        table = format_table(["x", "y"], [])
        assert "x" in table

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=5))
    def test_any_float_formats(self, row):
        format_table(["c"] * len(row), [row])  # must not raise

    def test_timing_table_has_sample_statistics(self):
        from repro.bench import format_timing_table

        timing = repeat_average(lambda: sum(range(500)), runs=3)
        table = format_timing_table([("case-a", timing)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        for column in ("mean_ms", "median_ms", "min_ms", "stdev_ms", "runs"):
            assert column in lines[1]
        assert "case-a" in table


class TestFigureSeries:
    """The series generators behind every bench (shape sanity)."""

    def test_fig34_covers_paper_sizes(self):
        rows = fig3_fig4_series(sizes=[2**20, 2**21])
        assert [r["n"] for r in rows] == [2**20, 2**21]
        assert FIG34_SIZES == [2**k for k in range(20, 27)]

    def test_fig34_fields(self):
        (row,) = fig3_fig4_series(sizes=[2**20])
        for key in ("speedup", "sequential_ms", "parallel_ms", "utilization", "leaves"):
            assert key in row
        assert 0 < row["utilization"] <= 1

    def test_ab1_ratio_near_one(self):
        rows = ab1_streams_vs_jplf_series(sizes=[2**16])
        assert all(0.9 < r["ratio"] < 1.1 for r in rows)

    def test_ab2_monotone(self):
        rows = ab2_fft_series(sizes=[2**10, 2**12, 2**14])
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)

    def test_ab3_penalty_toggle(self):
        with_pen = ab3_tie_vs_zip_series(sizes=[2**18], stride_penalty=0.3)
        without = ab3_tie_vs_zip_series(sizes=[2**18], stride_penalty=0.0)
        assert with_pen[0]["zip_over_tie"] > 1.1
        assert without[0]["zip_over_tie"] == pytest.approx(1.0, abs=1e-6)

    def test_ab4_has_interior_optimum(self):
        rows = ab4_threshold_series(n=2**14, leaf_logs=[0, 4, 8, 12])
        speedups = [r["speedup"] for r in rows]
        best = max(range(len(speedups)), key=lambda i: speedups[i])
        assert 0 < best < len(speedups) - 1 or speedups[best] > speedups[0]

    def test_ab6_levels_counted(self):
        rows = ab6_nway_series(configs=[(81, 3)])
        assert rows[0]["arity"] == 3
        assert rows[0]["levels"] >= 1
