"""Tests for the tupling transformation, rev collector, and the adder."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core import (
    PolynomialValueTupled,
    add_integers,
    carry_lookahead_add,
    polynomial_value,
    polynomial_value_tupled,
    power_collect,
    rev_collect,
    ripple_carry_add,
)
from repro.core.adder import (
    bits_to_int,
    carry_status,
    compose_status,
    int_to_bits,
)
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="ext-test")
    yield p
    p.shutdown()


class TestTupledPolynomial:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_numpy(self, parallel, pool):
        rng = random.Random(21)
        coeffs = [rng.uniform(-1, 1) for _ in range(256)]
        out = polynomial_value_tupled(coeffs, 0.93, parallel=parallel, pool=pool)
        assert out == pytest.approx(np.polyval(coeffs, 0.93), rel=1e-9)

    def test_agrees_with_descend_state_version(self, pool):
        rng = random.Random(22)
        coeffs = [rng.uniform(-1, 1) for _ in range(512)]
        a = polynomial_value(coeffs, 0.88, pool=pool)
        b = polynomial_value_tupled(coeffs, 0.88, pool=pool)
        assert a == pytest.approx(b, rel=1e-11)

    @pytest.mark.parametrize("target", [1, 3, 7, 64])
    def test_any_leaf_size_even_nonuniform(self, target, pool):
        # Tupling needs no uniform-depth property: odd target sizes force
        # ragged leaves and the result is still exact.
        rng = random.Random(23)
        coeffs = [rng.uniform(-1, 1) for _ in range(128)]
        out = polynomial_value_tupled(coeffs, 1.01, pool=pool, target_size=target)
        assert out == pytest.approx(np.polyval(coeffs, 1.01), rel=1e-9)

    def test_no_shared_state_mutated(self, pool):
        collector = PolynomialValueTupled(2.0)
        power_collect(collector, [1.0] * 64, pool=pool)
        assert collector.x == 2.0  # nothing on the function object moved

    @settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(0, 6).flatmap(
            lambda k: st.lists(
                st.floats(-1, 1, allow_nan=False), min_size=2**k, max_size=2**k
            )
        ),
        st.floats(-1.25, 1.25, allow_nan=False),
    )
    def test_property(self, coeffs, x):
        out = polynomial_value_tupled(coeffs, x, parallel=False)
        assert out == pytest.approx(np.polyval(coeffs, x), rel=1e-6, abs=1e-6)


class TestRevCollector:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_reverses(self, operator, parallel, pool):
        data = list(range(64))
        out = rev_collect(data, operator=operator, parallel=parallel, pool=pool)
        assert out == data[::-1]

    @pytest.mark.parametrize("target", [1, 2, 8, 32])
    def test_any_leaf_size(self, target, pool):
        data = [(i * 17) % 101 for i in range(64)]
        out = rev_collect(data, pool=pool, target_size=target)
        assert out == data[::-1]

    def test_agrees_with_spec(self, pool):
        from repro.powerlist import PowerList
        from repro.powerlist.functions import rev

        data = list(range(32))
        assert rev_collect(data, pool=pool) == rev(PowerList(data)).to_list()

    def test_bad_operator(self):
        with pytest.raises(IllegalArgumentError):
            rev_collect([1, 2], operator="bogus", parallel=False)


class TestAdderPrimitives:
    def test_carry_status(self):
        assert carry_status(1, 1) == "G"
        assert carry_status(0, 0) == "K"
        assert carry_status(1, 0) == "P"
        assert carry_status(0, 1) == "P"

    def test_bad_bits(self):
        with pytest.raises(IllegalArgumentError):
            carry_status(2, 0)

    def test_compose_later_wins(self):
        assert compose_status("G", "K") == "K"
        assert compose_status("K", "G") == "G"
        assert compose_status("G", "P") == "G"
        assert compose_status("K", "P") == "K"
        assert compose_status("P", "P") == "P"

    @given(st.sampled_from("KGP"), st.sampled_from("KGP"), st.sampled_from("KGP"))
    def test_compose_associative(self, a, b, c):
        assert compose_status(compose_status(a, b), c) == compose_status(
            a, compose_status(b, c)
        )

    @given(st.sampled_from("KGP"))
    def test_p_is_identity(self, s):
        assert compose_status("P", s) == s
        assert compose_status(s, "P") == s

    @given(st.integers(0, 2**16 - 1))
    def test_bits_roundtrip(self, v):
        assert bits_to_int(int_to_bits(v, 16)) == v

    def test_width_overflow_rejected(self):
        with pytest.raises(IllegalArgumentError):
            int_to_bits(16, 4)


class TestAdders:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_ripple_matches_integer_add(self, a, b):
        bits, carry = ripple_carry_add(int_to_bits(a, 16), int_to_bits(b, 16))
        assert bits_to_int(bits) + (carry << 16) == a + b

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_lookahead_matches_integer_add(self, a, b):
        assert add_integers(a, b, 16) == a + b

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_lookahead_equals_ripple(self, a, b):
        a_bits, b_bits = int_to_bits(a, 16), int_to_bits(b, 16)
        assert carry_lookahead_add(a_bits, b_bits, parallel=False) == ripple_carry_add(
            a_bits, b_bits
        )

    def test_parallel_execution(self, pool):
        a, b = 123456789, 987654321
        assert add_integers(a, b, 32, parallel=True, pool=pool) == a + b

    def test_carry_out(self):
        assert add_integers(2**8 - 1, 1, 8) == 2**8

    def test_width_mismatch(self):
        with pytest.raises(IllegalArgumentError):
            carry_lookahead_add([0, 1], [1], parallel=False)
        with pytest.raises(IllegalArgumentError):
            ripple_carry_add([0, 1], [1])

    def test_non_power_width_rejected(self):
        from repro.common import NotPowerOfTwoError

        with pytest.raises(NotPowerOfTwoError):
            carry_lookahead_add([0, 1, 1], [1, 0, 1], parallel=False)
