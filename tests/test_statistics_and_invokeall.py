"""Tests for SummaryStatistics and ForkJoinTask.invoke_all."""

import statistics as py_stats

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.forkjoin import ForkJoinPool, RecursiveTask, invoke_all
from repro.streams import Collectors, Stream, stream_of
from repro.streams.statistics import SummaryStatistics, summarizing


class TestSummaryStatistics:
    def test_empty(self):
        s = SummaryStatistics()
        assert s.count == 0
        assert s.mean == 0.0
        assert "empty" in repr(s)

    def test_accept(self):
        s = SummaryStatistics()
        for v in (3, 1, 4, 1, 5):
            s.accept(v)
        assert s.count == 5
        assert s.total == 14
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.mean == pytest.approx(2.8)

    def test_combine(self):
        a, b = SummaryStatistics(), SummaryStatistics()
        for v in (1, 2):
            a.accept(v)
        for v in (10, -5):
            b.accept(v)
        a.combine(b)
        assert a.count == 4
        assert a.minimum == -5
        assert a.maximum == 10

    def test_combine_with_empty(self):
        a = SummaryStatistics()
        a.accept(7)
        a.combine(SummaryStatistics())
        assert a.count == 1
        assert a.minimum == 7

    def test_repr_nonempty(self):
        s = SummaryStatistics()
        s.accept(2)
        assert "count=1" in repr(s)


class TestSummarizingCollector:
    def test_sequential(self):
        out = Stream.range(1, 11).collect(Collectors.summarizing())
        assert out.count == 10
        assert out.total == 55
        assert out.minimum == 1
        assert out.maximum == 10

    def test_parallel_equals_sequential(self):
        data = [(i * 31) % 97 for i in range(500)]
        seq = stream_of(data).collect(Collectors.summarizing())
        par = stream_of(data).parallel().collect(Collectors.summarizing())
        assert (par.count, par.total, par.minimum, par.maximum) == (
            seq.count, seq.total, seq.minimum, seq.maximum,
        )

    def test_value_function(self):
        out = stream_of(["a", "bbb", "cc"]).collect(Collectors.summarizing(len))
        assert out.total == 6
        assert out.maximum == 3

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_python_builtins(self, xs):
        out = stream_of(xs).parallel().collect(summarizing())
        assert out.count == len(xs)
        assert out.total == pytest.approx(sum(xs), rel=1e-9, abs=1e-6)
        assert out.minimum == min(xs)
        assert out.maximum == max(xs)
        assert out.mean == pytest.approx(py_stats.fmean(xs), rel=1e-9, abs=1e-6)


class _Const(RecursiveTask):
    def __init__(self, value):
        super().__init__()
        self.value = value

    def compute(self):
        return self.value


class _Boom(RecursiveTask):
    def compute(self):
        raise RuntimeError("boom")


class TestInvokeAll:
    @pytest.fixture(scope="class")
    def pool(self):
        p = ForkJoinPool(parallelism=4, name="invokeall")
        yield p
        p.shutdown()

    def test_empty(self):
        assert invoke_all() == []

    def test_results_in_order(self, pool):
        class Root(RecursiveTask):
            def compute(self):
                return invoke_all(*[_Const(i) for i in range(10)])

        assert pool.invoke(Root()) == list(range(10))

    def test_exception_propagates_after_settling(self, pool):
        done = []

        class Slow(RecursiveTask):
            def compute(self):
                done.append(1)
                return 1

        class Root(RecursiveTask):
            def compute(self):
                return invoke_all(_Boom(), Slow(), Slow())

        with pytest.raises(RuntimeError, match="boom"):
            pool.invoke(Root())
        assert len(done) == 2  # siblings still ran to completion

    def test_nested_invoke_all(self, pool):
        class Level2(RecursiveTask):
            def __init__(self, base):
                super().__init__()
                self.base = base

            def compute(self):
                return sum(invoke_all(*[_Const(self.base + i) for i in range(4)]))

        class Root(RecursiveTask):
            def compute(self):
                return sum(invoke_all(*[Level2(b) for b in range(0, 40, 10)]))

        expected = sum(b + i for b in range(0, 40, 10) for i in range(4))
        assert pool.invoke(Root()) == expected
