"""Tests for the multi-process parallel backend and shared-memory shipping.

Covers the full stack of PR "process backend": the shm segment registry
and descriptor round-trips, PowerList descriptor pickling, backend
selection controls, result parity across the five terminal families,
deadline propagation into leaf submission, worker-kill chaos (broken-pool
containment and sequential degradation), and the labeled metrics the
executor exports.
"""

import functools
import operator
import pickle
import time
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.common import IllegalArgumentError, TaskTimeoutError
from repro.jplf.process_executor import ProcessExecutor, current_leaf_cancel
from repro.powerlist import PowerList, shm
from repro.streams import (
    Collector,
    CollectorCharacteristics,
    Stream,
    parallel_backend,
    parallel_backend_name,
    set_parallel_backend,
    stream_of,
)
from repro.streams import process_backend as pb
from repro.streams.ops import FilterOp, MapOp
from repro.streams.parallel import _backend_from_env
from repro.streams.spliterators import ListSpliterator, RangeSpliterator


# --------------------------------------------------------------------------- #
# Module-level functions: everything crossing the process boundary must pickle
# --------------------------------------------------------------------------- #

def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _over(x, threshold):
    return x > threshold


def _slow_identity(x):
    time.sleep(0.4)
    return x


def _new_list():
    return []


def _acc_append(container, item):
    container.append(item)


def _combine_extend(a, b):
    a.extend(b)
    return a


@pytest.fixture
def executor():
    with ProcessExecutor(processes=2) as ex:
        yield ex


# --------------------------------------------------------------------------- #
# Shared-memory storage and descriptors
# --------------------------------------------------------------------------- #

class TestSharedMemoryStorage:
    def test_share_describe_rebuild_roundtrip(self):
        arr = shm.share_array(np.arange(64, dtype=np.int64))
        try:
            desc = shm.describe(arr)
            assert desc is not None
            rebuilt = shm.rebuild(desc)
            assert np.array_equal(rebuilt, arr)
        finally:
            shm.detach_all()
            shm.release(arr)
        assert shm.active_segments() == []

    def test_views_ship_as_descriptors(self):
        arr = shm.share_array(np.arange(64, dtype=np.int64))
        try:
            half = arr[:32]
            comb = arr[1::2]
            for view in (half, comb):
                desc = shm.describe(view)
                assert desc is not None
                assert np.array_equal(shm.rebuild(desc), view)
        finally:
            shm.detach_all()
            shm.release(arr)

    def test_unshared_array_yields_no_descriptor(self):
        assert shm.describe(np.arange(8)) is None
        assert shm.storage_of(np.arange(8)) is None

    def test_rejects_2d_and_object_dtype(self):
        with pytest.raises(IllegalArgumentError):
            shm.share_array(np.zeros((2, 2)))
        with pytest.raises(IllegalArgumentError):
            shm.share_array(np.array([object()], dtype=object))

    def test_release_is_idempotent_and_tracked(self):
        arr = shm.share_array(np.arange(8, dtype=np.float64))
        name = shm.storage_of(arr).name
        assert name in shm.active_segments()
        shm.release(arr)
        assert name not in shm.active_segments()
        shm.release(arr)  # no-op


class TestPowerListDescriptorPickling:
    def test_tie_zip_views_pickle_compactly(self):
        arr = shm.share_array(np.arange(1024, dtype=np.int64))
        try:
            plist = PowerList(arr)
            left, right = plist.tie_split()
            even, odd = plist.zip_split()
            raw = len(pickle.dumps(np.asarray(arr).copy()))
            for view in (plist, left, right, even, odd):
                blob = pickle.dumps(view)
                # A descriptor, not a data copy: orders of magnitude smaller.
                assert len(blob) < raw / 10
                assert pickle.loads(blob).to_list() == view.to_list()
        finally:
            shm.detach_all()
            shm.release(arr)

    def test_plain_powerlist_still_pickles_by_value(self):
        plist = PowerList([1, 2, 3, 4])
        assert pickle.loads(pickle.dumps(plist)).to_list() == [1, 2, 3, 4]


# --------------------------------------------------------------------------- #
# Backend selection controls
# --------------------------------------------------------------------------- #

class TestBackendControls:
    def test_default_is_threads(self):
        assert parallel_backend_name() == "threads"

    def test_set_and_restore(self):
        previous = set_parallel_backend("sequential")
        try:
            assert previous == "threads"
            assert parallel_backend_name() == "sequential"
        finally:
            set_parallel_backend(previous)

    def test_context_manager_scopes(self):
        with parallel_backend("process"):
            assert parallel_backend_name() == "process"
        assert parallel_backend_name() == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(IllegalArgumentError, match="unknown parallel backend"):
            set_parallel_backend("gpu")
        with pytest.raises(IllegalArgumentError):
            Stream.range(0, 4).parallel().with_backend("nope")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert _backend_from_env() == "process"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "")
        assert _backend_from_env() == "threads"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "bogus")
        with pytest.raises(IllegalArgumentError):
            _backend_from_env()

    def test_stream_of_backend_kwarg(self):
        out = stream_of(range(64), parallel=True, backend="sequential").to_list()
        assert out == list(range(64))

    def test_unpicklable_function_reports_clearly(self):
        stream = Stream.range(0, 64).parallel().with_backend("process")
        with pytest.raises(IllegalArgumentError, match="picklable"):
            stream.map(lambda x: x + 1).to_list()


# --------------------------------------------------------------------------- #
# Terminal parity: process backend == threads backend == sequential
# --------------------------------------------------------------------------- #

class TestTerminalParity:
    def _sources(self):
        yield Stream.range(0, 1 << 10)
        yield Stream.of_iterable([(i * 37) % 101 for i in range(1 << 10)])

    def test_collect_to_list(self):
        for make in (lambda: Stream.range(0, 1 << 10),):
            expected = make().map(_double).to_list()
            got = (
                make().parallel().with_backend("process").map(_double).to_list()
            )
            assert got == expected

    def test_collect_over_shared_array(self):
        arr = shm.share_array(np.arange(1 << 10, dtype=np.int64))
        try:
            expected = [x * 2 for x in range(1 << 10)]
            got = (
                Stream.of_iterable(arr)
                .parallel()
                .with_backend("process")
                .map(_double)
                .to_list()
            )
            assert got == expected
        finally:
            shm.release(arr)

    def test_collect_with_picklable_collector(self, executor):
        collector = Collector.of(
            _new_list, _acc_append, _combine_extend, None,
            CollectorCharacteristics.IDENTITY_FINISH,
        )
        got = pb.process_collect(
            RangeSpliterator(0, 256), [], collector,
            target_size=32, executor=executor,
        )
        assert got == list(range(256))

    def test_reduce_with_and_without_identity(self):
        expected = sum(range(1 << 10))
        stream = Stream.range(0, 1 << 10).parallel().with_backend("process")
        assert stream.reduce(0, operator.add) == expected
        opt = (
            Stream.range(0, 1 << 10)
            .parallel()
            .with_backend("process")
            .reduce(operator.add)
        )
        assert opt.get() == expected
        empty = Stream.empty().parallel().with_backend("process").reduce(operator.add)
        assert not empty.is_present()

    def test_match_family(self):
        def make():
            return Stream.range(0, 1 << 12).parallel().with_backend("process")

        assert make().any_match(functools.partial(_over, threshold=4000))
        assert not make().any_match(functools.partial(_over, threshold=1 << 13))
        assert make().all_match(functools.partial(_over, threshold=-1))
        assert make().none_match(functools.partial(_over, threshold=1 << 13))

    def test_find_first_keeps_encounter_order(self):
        got = (
            Stream.range(0, 1 << 12)
            .parallel()
            .with_backend("process")
            .filter(functools.partial(_over, threshold=2000))
            .find_first()
        )
        assert got.get() == 2001

    def test_find_any_finds_some_element(self):
        got = (
            Stream.range(0, 1 << 12)
            .parallel()
            .with_backend("process")
            .filter(_is_even)
            .find_any()
        )
        assert got.get() % 2 == 0

    def test_for_each_runs_in_workers(self, executor):
        # Side effects land in the child; the parent only observes
        # completion without error.
        pb.process_for_each(
            RangeSpliterator(0, 128), [], _double,
            target_size=16, executor=executor,
        )

    def test_stateful_barrier_pipeline(self):
        data = [(i * 29) % 61 for i in range(512)]
        expected = sorted(set(x * 2 for x in data))[:100]
        got = (
            stream_of(data, parallel=True, backend="process")
            .map(_double)
            .distinct()
            .sorted()
            .limit(100)
            .to_list()
        )
        assert got == expected

    def test_sequential_backend_matches(self):
        expected = Stream.range(0, 512).map(_double).to_list()
        got = (
            Stream.range(0, 512)
            .parallel()
            .with_backend("sequential")
            .map(_double)
            .to_list()
        )
        assert got == expected


# --------------------------------------------------------------------------- #
# Deadlines: with_deadline must bound process-backend leaf submission
# --------------------------------------------------------------------------- #

class TestDeadlinePropagation:
    def test_deadline_cancels_outstanding_leaf_batches(self):
        with ProcessExecutor(processes=1) as ex:
            started = time.perf_counter()
            with pytest.raises(TaskTimeoutError):
                pb.process_collect(
                    RangeSpliterator(0, 4),
                    [MapOp(_slow_identity)],
                    _list_collector(),
                    target_size=1,
                    deadline=_deadline_after(0.25),
                    executor=ex,
                )
            elapsed = time.perf_counter() - started
            # Raised promptly at the deadline, not after every 0.4 s leaf.
            assert elapsed < 1.5
            assert ex.stats()["deadline_timeouts"] >= 1

    def test_stream_with_deadline_reaches_backend(self):
        with ProcessExecutor(processes=1) as ex:
            original = pb._shared_executor
            pb._shared_executor = ex
            try:
                with pytest.raises(TaskTimeoutError):
                    (
                        Stream.range(0, 4)
                        .parallel()
                        .with_backend("process")
                        .with_target_size(1)
                        .with_deadline(0.25)
                        .map(_slow_identity)
                        .to_list()
                    )
            finally:
                pb._shared_executor = original


def _deadline_after(seconds):
    from repro.faults.policy import Deadline

    return Deadline.after(seconds)


def _list_collector():
    return Collector.of(
        _new_list, _acc_append, _combine_extend, None,
        CollectorCharacteristics.IDENTITY_FINISH,
    )


# --------------------------------------------------------------------------- #
# Chaos: worker kills, broken-pool containment, sequential degradation
# --------------------------------------------------------------------------- #

class TestWorkerChaos:
    def test_kill_breaks_pool_then_retry_recovers(self):
        from repro.faults import FaultPlan, RetryPolicy, fault_injection

        plan = FaultPlan(seed=11).inject("proc:worker-0", "kill", times=1)
        with ProcessExecutor(processes=2, retry=RetryPolicy(max_attempts=3)) as ex:
            with fault_injection(plan):
                got = pb.process_collect(
                    RangeSpliterator(0, 512), [], _list_collector(),
                    target_size=64, executor=ex,
                )
            assert got == list(range(512))
            stats = ex.stats()
        assert stats["broken_pools"] >= 1
        assert stats["retries"] >= 1

    def test_unbounded_kills_degrade_to_sequential(self):
        from repro.faults import FaultPlan, RetryPolicy, fault_injection

        plan = FaultPlan(seed=12).inject("proc:*", "kill")  # every batch, always
        with ProcessExecutor(
            processes=2, retry=RetryPolicy(max_attempts=2), fallback=True
        ) as ex:
            with fault_injection(plan):
                got = pb.process_collect(
                    RangeSpliterator(0, 256), [], _list_collector(),
                    target_size=64, executor=ex,
                )
            assert got == list(range(256))
            assert ex.stats()["degraded_runs"] == 1

    def test_kill_without_policy_is_contained(self):
        from repro.faults import FaultPlan, fault_injection

        plan = FaultPlan(seed=13).inject("proc:worker-0", "kill", times=1)
        with ProcessExecutor(processes=2) as ex:
            with fault_injection(plan):
                with pytest.raises(BrokenProcessPool):
                    pb.process_collect(
                        RangeSpliterator(0, 256), [], _list_collector(),
                        target_size=64, executor=ex,
                    )
            # The broken pool was discarded; the next run forks a fresh
            # one and succeeds.
            got = pb.process_collect(
                RangeSpliterator(0, 256), [], _list_collector(),
                target_size=64, executor=ex,
            )
            assert got == list(range(256))
            assert ex.stats()["broken_pools"] == 1

    def test_kill_containment_covers_submit_time_breakage(self):
        """A killed worker can fail the pool *between submits*, so the
        BrokenProcessPool surfaces from ``pool.submit`` rather than from
        a future — containment must count and discard on that path too.
        Repeated trials cover both timings (which one occurs is a race
        against the dying child)."""
        from repro.faults import FaultPlan, fault_injection

        with ProcessExecutor(processes=2) as ex:
            for trial in range(4):
                plan = FaultPlan(seed=100 + trial).inject(
                    "proc:worker-0", "kill", times=1
                )
                with fault_injection(plan):
                    with pytest.raises(BrokenProcessPool):
                        pb.process_collect(
                            RangeSpliterator(0, 256), [], _list_collector(),
                            target_size=64, executor=ex,
                        )
                # Exactly one containment per trial, and the next run
                # always gets a fresh pool.
                assert ex.stats()["broken_pools"] == trial + 1
                got = pb.process_collect(
                    RangeSpliterator(0, 256), [], _list_collector(),
                    target_size=64, executor=ex,
                )
                assert got == list(range(256))


# --------------------------------------------------------------------------- #
# Explain and metrics integration
# --------------------------------------------------------------------------- #

class TestExplainAndMetrics:
    def test_explain_reports_backend_and_shipping(self):
        plan = (
            Stream.range(0, 1 << 12)
            .parallel()
            .with_backend("process")
            .map(_double)
            .explain()
            .to_dict()
        )
        assert plan["execution"]["backend"] == "process"
        assert plan["execution"]["pool"] == "process"
        assert plan["execution"]["shipping"] == "descriptor"

    def test_explain_shipping_modes(self):
        arr = shm.share_array(np.arange(64, dtype=np.int64))
        try:
            shared_plan = (
                Stream.of_iterable(arr)
                .parallel()
                .with_backend("process")
                .explain()
                .to_dict()
            )
            assert shared_plan["execution"]["shipping"] == "shm-descriptor"
            pickled_plan = (
                stream_of([1, 2, 3, 4], parallel=True, backend="process")
                .explain()
                .to_dict()
            )
            assert pickled_plan["execution"]["shipping"] == "pickle"
        finally:
            shm.release(arr)

    def test_explain_threads_default_unchanged(self):
        plan = Stream.range(0, 64).parallel().explain().to_dict()
        assert plan["execution"]["backend"] == "threads"
        assert "shipping" not in plan["execution"]

    def test_explain_sequential_backend_downgrade(self):
        plan = (
            Stream.range(0, 64)
            .parallel()
            .with_backend("sequential")
            .explain()
            .to_dict()
        )
        assert plan["execution"]["parallel"] is False
        assert plan["execution"]["backend"] == "sequential"

    def test_render_mentions_backend(self):
        text = str(
            Stream.range(0, 64).parallel().with_backend("process").explain()
        )
        assert "backend=process" in text
        assert "shipping: descriptor" in text

    def test_prom_metrics_cover_process_runs(self, executor):
        from repro.obs.prom import render

        pb.process_collect(
            RangeSpliterator(0, 256), [], _list_collector(),
            target_size=64, executor=executor,
        )
        text = render(executor.metrics)
        assert 'runs_total{pool="process",processes="2"} 1' in text
        assert 'worker_batches_total{' in text
        assert 'pool="process"' in text
        stats = executor.stats()
        assert stats["runs"] == 1
        assert sum(w["worker_batches"] for w in stats["workers"].values()) >= 1
        assert sum(w["worker_leaves"] for w in stats["workers"].values()) == 4


# --------------------------------------------------------------------------- #
# Leaf splitting invariants
# --------------------------------------------------------------------------- #

class TestLeafSplitting:
    def test_split_preserves_encounter_order(self):
        leaves = pb.split_to_leaves(RangeSpliterator(0, 1000), 100)
        flattened = []
        for leaf in leaves:
            chunk = leaf.next_chunk(10_000)
            flattened.extend(chunk if chunk is not None else [])
        assert flattened == list(range(1000))

    def test_unsplittable_source_is_single_leaf(self):
        leaves = pb.split_to_leaves(ListSpliterator([1, 2, 3]), 1)
        total = []
        for leaf in leaves:
            chunk = leaf.next_chunk(100)
            total.extend(chunk if chunk is not None else [])
        assert sorted(total) == [1, 2, 3]

    def test_source_specs_by_kind(self):
        assert pb._leaf_source_spec(RangeSpliterator(3, 9))[0] == "range"
        assert pb._leaf_source_spec(ListSpliterator([1, 2]))[0] == "seq"
        arr = shm.share_array(np.arange(16, dtype=np.int64))
        try:
            spec = pb._leaf_source_spec(ListSpliterator(arr))
            assert spec[0] == "shm"
        finally:
            shm.release(arr)


# --------------------------------------------------------------------------- #
# Cross-process cancellation: SharedFlag and chunk-boundary leaf abort
# --------------------------------------------------------------------------- #

class TestSharedFlag:
    def test_lifecycle_and_leak_guard(self):
        flag = shm.SharedFlag.create()
        assert not flag.is_set()
        # The leak guard must see an abandoned flag like any segment.
        assert flag.name in shm.active_segments()
        attached = shm.SharedFlag.attach(flag.name)
        assert not attached.is_set()
        flag.set()
        assert attached.is_set()
        attached.close()
        flag.close()
        assert flag.name not in shm.active_segments()
        assert not flag.is_set()  # a closed flag reads as clear

    def test_attacher_side_set_is_visible_to_owner(self):
        flag = shm.SharedFlag.create()
        try:
            attached = shm.SharedFlag.attach(flag.name)
            attached.set()
            attached.close()
            assert flag.is_set()
        finally:
            flag.close()

    def test_attach_after_unlink_raises(self):
        flag = shm.SharedFlag.create()
        name = flag.name
        flag.close()
        with pytest.raises(FileNotFoundError):
            shm.SharedFlag.attach(name)

    def test_close_is_idempotent(self):
        flag = shm.SharedFlag.create()
        flag.close()
        flag.close()

    def test_no_flag_outside_a_batch(self):
        assert current_leaf_cancel() is None


def _noop_leaf(payload):
    return payload


def _coordinated_probe(desc, boundary, x):
    """Match predicate instrumented with shared counters (see the test).

    Slot 0: release latch (leaf 1 opens it when it starts running).
    Slot 1: elements scanned by leaf 0 (the leaf that must be aborted).
    Slot 2: elements scanned by leaf 1 (the leaf holding the witness).
    Slot 3: sentinel — leaf 0 gave up waiting (the leaves never ran
    concurrently, so the run proves nothing and the test skips).
    """
    counters = shm.rebuild(desc)
    if x < boundary:
        counters[1] += 1
        if x == 0:
            # Leaf 0's first element: park until leaf 1 is running in the
            # other worker, so leaf 0 is provably mid-scan when the
            # witness is found.
            deadline = time.monotonic() + 10.0
            while counters[0] == 0:
                if time.monotonic() > deadline:
                    counters[3] = 1
                    return False
                time.sleep(0.001)
        return False
    counters[2] += 1
    if x == boundary:
        counters[0] = 1  # release leaf 0
    return x == boundary + 4


class TestRunningLeafAbort:
    def test_any_match_aborts_running_leaf_mid_scan(self, executor):
        """The cross-cancellation bugfix: a RUNNING leaf in another worker
        must abort at its next poll point once a sibling finds a witness —
        batch-level cancellation of *pending* futures is not enough.

        Leaf 0 ([0, boundary)) parks on its first element until leaf 1
        ([boundary, 2×boundary)) starts, guaranteeing both leaves are
        running concurrently in the two workers.  Leaf 1 hits the witness
        five elements in, sets the shared flag, and leaf 0 — mid-scan,
        far from done — must stop long before exhausting its range.
        """
        boundary = 1 << 14
        n = 2 * boundary
        # Warm both workers so the two leaf batches run concurrently.
        executor.run_leaves(_noop_leaf, list(range(4)))
        counters = shm.share_array(np.zeros(4, dtype=np.int64))
        try:
            predicate = functools.partial(
                _coordinated_probe, shm.describe(counters), boundary
            )
            result = pb.process_match(
                RangeSpliterator(0, n), [], predicate, "any",
                target_size=boundary, executor=executor,
            )
            assert result is True
            if counters[3] == 1:
                pytest.skip("leaf batches never overlapped in the workers")
            scanned_by_aborted_leaf = int(counters[1])
            total_scanned = int(counters[1] + counters[2])
        finally:
            shm.detach_all()
            shm.release(counters)
        # The aborted leaf stopped mid-scan: it saw the shared flag at a
        # poll point and quit long before its boundary-sized range ended.
        assert scanned_by_aborted_leaf < boundary // 2
        assert total_scanned < n // 2

    def test_no_segments_leak_after_match(self, executor):
        before = shm.active_segments()
        assert pb.process_match(
            RangeSpliterator(0, 1 << 12), [], _is_even, "any",
            executor=executor,
        )
        assert shm.active_segments() == before


class TestAdaptiveProcessBackend:
    def test_auto_target_size_parity_and_memo(self, executor):
        from repro.streams import adaptive

        adaptive.reset_split_policy()
        try:
            expected = sum(range(1 << 12))
            for _ in range(2):
                total = pb.process_reduce(
                    RangeSpliterator(0, 1 << 12), [], operator.add,
                    identity=0, has_identity=True,
                    target_size="auto", executor=executor,
                )
                assert total == expected
            stats = adaptive.split_policy_stats()
            assert stats["decisions"] == 2
            assert stats["observed_runs"] == 2
            assert stats["bootstrap"] == 1
        finally:
            adaptive.reset_split_policy()
            adaptive.split_policy_stats(reset=True)


# --------------------------------------------------------------------------- #
# Counted-limit budget: contiguous-prefix early stop + sibling-leaf abort
# --------------------------------------------------------------------------- #

_BUDGET_COUNTER_CACHE: dict = {}


def _budget_counters(desc):
    # One shm attach per worker process, not per probed element — the
    # probe runs tens of thousands of times inside the scanned leaf.
    arr = _BUDGET_COUNTER_CACHE.get(desc[1])
    if arr is None:
        arr = shm.rebuild(desc)
        _BUDGET_COUNTER_CACHE[desc[1]] = arr
    return arr


def _under(x, threshold):
    return x < threshold


def _budget_probe(x, desc, boundary):
    """Map stage instrumented with shared counters (see the test).

    Slot 0: release latch (leaf 1 opens it when it starts running).
    Slot 1: elements scanned by leaf 0 (the leaf that fills the budget).
    Slot 2: elements scanned by leaf 1 (the leaf that must be aborted).
    Slot 3: sentinel — a coordination wait timed out; the leaves never
    provably overlapped, so the run proves nothing and the test skips.
    """
    counters = _budget_counters(desc)
    if x < boundary:
        counters[1] += 1
        if x == 0:
            # Leaf 0's first element: park until leaf 1 is running in the
            # other worker, so the budget is satisfied while leaf 1 is
            # provably mid-scan.
            deadline = time.monotonic() + 10.0
            while counters[0] == 0:
                if time.monotonic() > deadline:
                    counters[3] = 1
                    break
                time.sleep(0.001)
        return x
    counters[2] += 1
    if x == boundary:
        counters[0] = 1  # release leaf 0
        # Park until the satisfied budget sets the run's SharedFlag, so
        # this leaf is provably RUNNING (not pending) when cancelled.
        flag = current_leaf_cancel()
        deadline = time.monotonic() + 10.0
        while flag is not None and not flag.is_set():
            if time.monotonic() > deadline:
                counters[3] = 1
                break
            time.sleep(0.001)
    return x


class TestCountedLimitAbort:
    def test_satisfied_limit_aborts_running_sibling_mid_scan(self, executor):
        """A satisfied counted ``limit`` must behave like a found match
        witness: once the contiguous prefix of completed leaves has
        produced the budget, the scatter stops and the run's SharedFlag
        makes RUNNING sibling leaves abort at their next chunk boundary —
        long before scanning their whole range.

        Leaf 0 ([0, boundary)) passes the filter throughout, so its
        counted kernel cuts after exactly ``budget`` elements.  Leaf 1
        ([boundary, 2×boundary)) never passes the filter: nothing but the
        shared flag can stop it before exhausting its range.
        """
        boundary = 1 << 18
        budget = 64
        # Warm both workers so the two leaf batches run concurrently.
        executor.run_leaves(_noop_leaf, list(range(4)))
        counters = shm.share_array(np.zeros(4, dtype=np.int64))
        try:
            probe = functools.partial(
                _budget_probe, desc=shm.describe(counters), boundary=boundary
            )
            collector = Collector.of(
                _new_list, _acc_append, _combine_extend, None,
                CollectorCharacteristics.IDENTITY_FINISH,
            )
            got = pb.process_collect(
                RangeSpliterator(0, 2 * boundary),
                [MapOp(probe),
                 FilterOp(functools.partial(_under, threshold=boundary))],
                collector,
                target_size=boundary, executor=executor, budget=budget,
            )
            assert got == list(range(budget))
            if counters[3] == 1:
                pytest.skip("leaf batches never overlapped in the workers")
            scanned_by_prefix_leaf = int(counters[1])
            scanned_by_aborted_leaf = int(counters[2])
        finally:
            shm.detach_all()
            shm.release(counters)
        # The prefix leaf's counted kernel cut its scan at the budget.
        assert scanned_by_prefix_leaf == budget
        # The sibling leaf aborted mid-scan at a chunk boundary: far less
        # than its boundary-sized range (and of the whole source).
        assert scanned_by_aborted_leaf < boundary // 2

    def test_no_segments_leak_after_budgeted_collect(self, executor):
        before = shm.active_segments()
        collector = Collector.of(
            _new_list, _acc_append, _combine_extend, None,
            CollectorCharacteristics.IDENTITY_FINISH,
        )
        got = pb.process_collect(
            RangeSpliterator(0, 1 << 12), [MapOp(_double)], collector,
            target_size=1 << 10, executor=executor, budget=100,
        )
        # Each completed leaf contributes at most ``budget`` elements and
        # the caller truncates; the global first-``budget`` prefix must be
        # exact regardless of how many trailing leaves completed.
        assert got[:100] == [x * 2 for x in range(100)]
        assert shm.active_segments() == before

    @pytest.mark.parametrize("budget", [0, 1, 7])
    def test_budget_edge_parity_with_sequential(self, executor, budget):
        collector = Collector.of(
            _new_list, _acc_append, _combine_extend, None,
            CollectorCharacteristics.IDENTITY_FINISH,
        )
        got = pb.process_collect(
            RangeSpliterator(0, 256), [MapOp(_double)], collector,
            target_size=32, executor=executor, budget=budget,
        )
        # Per-leaf truncation bounds the overshoot; the prefix is exact.
        assert got[:budget] == [x * 2 for x in range(budget)]
        assert len(got) <= max(budget, 1) * 8  # 8 leaves of 32

    def test_stream_level_limit_on_process_backend(self):
        # End to end through Stream._barrier_stateful: the limit barrier
        # ships its count as the collect budget and truncates exactly.
        got = (
            Stream.range(0, 1 << 12)
            .parallel()
            .with_backend("process")
            .map(_double)
            .limit(37)
            .to_list()
        )
        assert got == [x * 2 for x in range(37)]
