"""Session-wide guards for the test suite.

The shared-memory backing store (``repro.powerlist.shm``) creates named
OS-level segments that outlive the process if not unlinked — a leak that
survives the interpreter.  The guard below asserts every segment created
during the run was released by the code under test before the session
ends, then tears down the shared worker-process pool so no child outlives
pytest.
"""

import pytest

from repro.powerlist import shm


@pytest.fixture(scope="session", autouse=True)
def _shm_leak_guard():
    yield
    from repro.streams import process_backend

    process_backend.shutdown_shared_executor()
    leaked = shm.active_segments()
    # Clean up even when the assertion is about to fail: a leaked segment
    # must not survive the test process just because we reported it.
    shm.release_all()
    shm.detach_all()
    assert leaked == [], (
        f"shared-memory segments leaked by the test session: {leaked}"
    )
