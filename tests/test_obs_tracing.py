"""Tests for the real-execution observability layer (``repro.obs``)."""

import json

import pytest

from repro.common import IllegalArgumentError
from repro.core.polynomial import PolynomialValue, horner, polynomial_value
from repro.forkjoin import ForkJoinPool
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    current_tracer,
    render_gantt,
    set_tracer,
    summarize_workers,
    to_chrome_trace,
    trace_snapshot,
    tracing,
    worker_report,
    write_chrome_trace,
)
from repro.simcore.instrument import record_decomposition
from repro.streams import Stream
from repro.streams.stream_support import StreamSupport


class TestTracer:
    def test_disabled_by_default(self):
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit("leaf", worker=0, start_ns=0, end_ns=1)
        NULL_TRACER.instant("steal", worker=0)
        assert NULL_TRACER.spans() == []

    def test_tracing_context_installs_and_restores(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
            assert tracer.enabled
        assert current_tracer() is NULL_TRACER

    def test_emit_and_ordering(self):
        tracer = Tracer()
        tracer.emit("leaf", worker=1, start_ns=100, end_ns=200)
        tracer.emit("split", worker=0, start_ns=50, end_ns=80)
        spans = tracer.spans()
        assert [s.kind for s in spans] == ["split", "leaf"]
        assert spans[1].duration_ns == 100

    def test_instant_spans(self):
        tracer = Tracer()
        tracer.instant("steal", worker=2, at_ns=42)
        (span,) = tracer.spans()
        assert span.is_instant
        assert span.start_ns == span.end_ns == 42

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("leaf", worker=0, start_ns=i, end_ns=i + 1)
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.start_ns for s in spans] == [6, 7, 8, 9]
        assert tracer.wrapped

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("function", worker=3, name="MyCollector", size=8):
            pass
        (span,) = tracer.spans()
        assert span.name == "MyCollector"
        assert span.worker == 3
        assert span.end_ns >= span.start_ns
        assert span.args == {"size": 8}

    def test_set_tracer_none_disables(self):
        set_tracer(Tracer())
        try:
            assert current_tracer().enabled
        finally:
            set_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(IllegalArgumentError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("g")
        g.set(2.5)
        g.add(-1.0)
        assert g.value == 1.5

    def test_histogram_bucket_edges(self):
        h = Histogram("h", num_buckets=6)
        # Bounded upper edges are 2^0..2^4; bucket i holds edge[i-1] < v <= edge[i].
        assert h.edges == (1, 2, 4, 8, 16)
        for value in (0, 1, 1.5, 2, 3, 16, 17, 1_000_000):
            h.observe(value)
        assert h.counts == [2, 2, 1, 0, 1, 2]
        assert h.count == 8
        assert h.total == pytest.approx(1_000_040.5)
        with pytest.raises(IllegalArgumentError):
            h.observe(-1)

    def test_histogram_quantile_bound(self):
        h = Histogram("h", num_buckets=6)
        for value in (1, 1, 1, 16):
            h.observe(value)
        assert h.quantile_bound(0.5) == 1.0
        assert h.quantile_bound(1.0) == 16.0

    def test_registry_get_or_create(self):
        reg = MetricsRegistry("test")
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(IllegalArgumentError):
            reg.gauge("x")

    def test_registry_snapshot_consistent_shape(self):
        reg = MetricsRegistry("snap")
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c", num_buckets=4).observe(2)
        snap = reg.snapshot()
        assert snap["a"] == 3
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1
        assert len(snap["c"]["counts"]) == 4


class TestChromeExport:
    def _sample_spans(self):
        return [
            Span("leaf", None, 0, 1000, 3000, {"size": 4}),
            Span("steal", None, 1, 1500, 1500, None),
            Span("combine", None, 0, 3000, 3500, None),
        ]

    def test_schema_validity(self):
        doc = to_chrome_trace(self._sample_spans(), metadata={"run": "test"})
        text = json.dumps(doc)  # must be JSON-serializable
        parsed = json.loads(text)
        assert isinstance(parsed["traceEvents"], list)
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["otherData"] == {"run": "test"}
        for event in parsed["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], (int, float))
            assert "pid" in event and "tid" in event and "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
            else:
                assert event["s"] == "t"

    def test_timestamps_rebased_to_zero(self):
        events = to_chrome_trace(self._sample_spans())["traceEvents"]
        assert min(e["ts"] for e in events) == 0
        leaf = next(e for e in events if e["cat"] == "leaf")
        assert leaf["dur"] == pytest.approx(2.0)  # 2000 ns = 2 µs

    def test_empty_trace(self):
        assert to_chrome_trace([])["traceEvents"] == []

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "sub" / "t.json", self._sample_spans())
        assert path.exists()
        assert len(json.loads(path.read_text())["traceEvents"]) == 3


class TestReports:
    def test_snapshot_counts(self):
        spans = [
            Span("leaf", None, 0, 0, 10),
            Span("leaf", None, 1, 5, 9),
            Span("steal", None, 1, 6, 6),
        ]
        snap = trace_snapshot(spans)
        assert snap["counts"] == {"leaf": 2, "steal": 1}
        assert snap["duration_ns"]["leaf"] == 14
        assert snap["per_worker"][1] == {"leaf": 1, "steal": 1}

    def test_gantt_rows_and_glyphs(self):
        spans = [
            Span("task", None, 0, 0, 1000),
            Span("leaf", None, 0, 100, 900),
            Span("steal", None, 1, 500, 500),
        ]
        chart = render_gantt(spans, width=40)
        lines = chart.splitlines()
        assert lines[1].startswith("w0 ")
        assert "#" in lines[1]
        assert "*" in lines[2]

    def test_gantt_width_validated(self):
        with pytest.raises(IllegalArgumentError):
            render_gantt([Span("leaf", None, 0, 0, 1)], width=5)

    def test_empty_gantt(self):
        assert render_gantt([]) == "(empty trace)"

    def test_worker_report_includes_utilization(self):
        spans = [Span("task", None, 0, 0, 1000), Span("task", None, 1, 0, 500)]
        report = worker_report(spans, width=40)
        assert "util" in report
        assert "w0" in report and "w1" in report

    def test_summarize_workers_busy_not_double_counted(self):
        # leaf spans nest inside the task span: busy time is task time only.
        spans = [Span("task", None, 0, 0, 1000), Span("leaf", None, 0, 100, 900)]
        (summary,) = summarize_workers(spans)
        assert summary.busy_ns == 1000
        assert summary.utilization == 1.0


class TestTracedExecution:
    def test_on_off_parity(self):
        coeffs = [float(i % 7) for i in range(2**10)]
        with ForkJoinPool(parallelism=4, name="parity") as pool:
            plain = polynomial_value(coeffs, 0.5, pool=pool, target_size=2**7)
            with tracing() as tracer:
                traced = polynomial_value(coeffs, 0.5, pool=pool, target_size=2**7)
        assert traced == plain == pytest.approx(horner(coeffs, 0.5))
        assert len(tracer.spans()) > 0
        assert current_tracer() is NULL_TRACER

    def test_stream_collect_emits_decomposition_spans(self):
        n, target = 2**12, 2**9
        with ForkJoinPool(parallelism=4, name="spans") as pool:
            with tracing() as tracer:
                total = (
                    Stream.range(0, n).parallel().with_pool(pool)
                    .with_target_size(target).sum()
                )
        assert total == n * (n - 1) // 2
        counts = trace_snapshot(tracer.spans())["counts"]
        leaves = n // target
        assert counts["leaf"] == leaves
        assert counts["split"] == leaves - 1
        assert counts["combine"] == leaves - 1

    def test_real_trace_matches_instrumented_decomposition(self):
        """The Figure-3 workload: the observed real trace agrees with the
        decomposition recorded by ``repro.simcore.instrument``."""
        n, target, x = 2**10, 2**7, 1.001
        coeffs = [float(i % 5) for i in range(n)]

        # Ground truth: a real run over a recording spliterator.
        recorder_pv = PolynomialValue(x)
        wrapped, recording = record_decomposition(
            recorder_pv.create_spliterator(coeffs)
        )
        with ForkJoinPool(parallelism=4, name="rec") as pool:
            recorded_value = (
                StreamSupport.stream(wrapped, parallel=True)
                .with_pool(pool).with_target_size(target).collect(recorder_pv)
            )

        # Observed: the same workload traced for real.
        traced_pv = PolynomialValue(x)
        with ForkJoinPool(parallelism=4, name="obs") as pool:
            with tracing() as tracer:
                traced_value = (
                    StreamSupport.stream(
                        traced_pv.create_spliterator(coeffs), parallel=True
                    )
                    .with_pool(pool).with_target_size(target).collect(traced_pv)
                )
            stats = pool.stats()

        assert traced_value == pytest.approx(recorded_value)
        spans = tracer.spans()
        counts = trace_snapshot(spans)["counts"]
        # Decomposition is deterministic: same split/leaf structure.
        assert counts["leaf"] == len(recording.leaves())
        assert counts["split"] == len(recording.splits())
        assert counts["combine"] == counts["split"]

        # The exported Chrome trace carries the same counts...
        events = to_chrome_trace(spans)["traceEvents"]
        for kind in ("leaf", "split", "combine"):
            assert sum(1 for e in events if e["cat"] == kind) == counts[kind]
        # ...and per-worker task events agree with the pool's own stats.
        for row in stats["per_worker"]:
            observed = sum(
                1
                for e in events
                if e["cat"] == "task" and e["tid"] == row["worker"]
            )
            assert observed == row["executed"]


class TestRingBufferDropAccounting:
    """S1: overflow is visible everywhere a trace is consumed."""

    def test_dropped_counter_counts_evictions(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("leaf", worker=0, start_ns=i, end_ns=i + 1)
        assert len(tracer.spans()) == 4
        assert tracer.dropped == 6
        # The newest spans survive.
        assert [s.start_ns for s in tracer.spans()] == [6, 7, 8, 9]

    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.instant("steal", worker=0)
        assert tracer.dropped == 3
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.spans() == []

    def test_snapshot_of_tracer_includes_dropped(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("leaf", worker=0, start_ns=i, end_ns=i + 1)
        snap = trace_snapshot(tracer)
        assert snap["dropped"] == 3
        assert snap["counts"] == {"leaf": 2}
        # Passing a plain span list still works and reports zero.
        assert trace_snapshot(tracer.spans())["dropped"] == 0

    def test_gantt_header_flags_overflow(self):
        spans = [Span(kind="leaf", name=None, worker=0, start_ns=0, end_ns=100)]
        chart = render_gantt(spans, dropped=7)
        assert "dropped=7" in chart.splitlines()[0]
        assert "dropped" not in render_gantt(spans)

    def test_chrome_trace_carries_drop_count(self):
        tracer = Tracer(capacity=2)
        for i in range(6):
            tracer.emit("leaf", worker=0, start_ns=i, end_ns=i + 1)
        doc = to_chrome_trace(tracer.spans(), dropped=tracer.dropped)
        assert doc["otherData"]["spans_dropped"] == 4
        # dropped=0 keeps otherData absent entirely (pinned elsewhere).
        assert "otherData" not in to_chrome_trace(tracer.spans())

    def test_null_tracer_reports_zero_dropped(self):
        assert NULL_TRACER.dropped == 0


class TestExportEdgeCases:
    """S2: zero-duration and empty traces must not break the exporters."""

    def test_summarize_workers_empty(self):
        assert summarize_workers([]) == []

    def test_render_gantt_zero_duration_trace(self):
        # Every span instantaneous: wallclock is 0; must not divide by it.
        spans = [
            Span(kind="leaf", name=None, worker=0, start_ns=5, end_ns=5),
            Span(kind="steal", name=None, worker=1, start_ns=5, end_ns=5),
        ]
        chart = render_gantt(spans)
        assert "w0" in chart and "w1" in chart

    def test_worker_report_zero_duration_trace(self):
        spans = [Span(kind="leaf", name=None, worker=0, start_ns=3, end_ns=3)]
        report = worker_report(spans)
        assert "w0" in report

    def test_summarize_workers_zero_duration(self):
        spans = [Span(kind="leaf", name=None, worker=0, start_ns=3, end_ns=3)]
        (summary,) = summarize_workers(spans)
        assert summary.busy_ns == 0
        assert summary.idle_ns == 0
        assert summary.spans == 1


class TestExporterRoundTrips:
    """S3: what goes out must parse back to what was recorded."""

    def test_chrome_trace_round_trip_of_overflowed_buffer(self, tmp_path):
        tracer = Tracer(capacity=8)
        for i in range(20):
            tracer.emit("leaf", worker=i % 2, start_ns=i * 10, end_ns=i * 10 + 5)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer.spans(), dropped=tracer.dropped)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 8
        assert doc["otherData"]["spans_dropped"] == 12
        # Events round-trip the surviving ring-buffer contents in order
        # (timestamps are rebased to the earliest surviving span).
        base = min(s.start_ns for s in tracer.spans())
        starts = [e["ts"] for e in doc["traceEvents"]]
        assert starts == [(s.start_ns - base) / 1e3 for s in tracer.spans()]

    def test_quantile_bound_empty_histogram(self):
        hist = Histogram("empty")
        assert hist.quantile_bound(0.5) == 0.0
        assert hist.quantile_bound(1.0) == 0.0

    def test_quantile_bound_single_bucket(self):
        hist = Histogram("single")
        for _ in range(5):
            hist.observe(3)  # all in the le=4 bucket
        assert hist.quantile_bound(0.5) == 4.0
        assert hist.quantile_bound(0.99) == 4.0
        assert hist.quantile_bound(1.0) == 4.0

    def test_quantile_bound_rejects_bad_q(self):
        hist = Histogram("bad")
        with pytest.raises(IllegalArgumentError):
            hist.quantile_bound(0.0)
        with pytest.raises(IllegalArgumentError):
            hist.quantile_bound(1.5)

    def test_prometheus_round_trip_against_snapshot(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry(name="rt")
        registry.counter("jobs", pool="a").inc(3)
        registry.counter("jobs", pool="b").inc(5)
        registry.gauge("depth").set(2.5)
        hist = registry.histogram("lat", pool="a")
        for v in (1, 3, 100):
            hist.observe(v)

        text = render_prometheus(registry, namespace="test")
        parsed = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            key, value = line.rsplit(" ", 1)
            parsed[key] = float(value)

        assert parsed['test_jobs_total{pool="a"}'] == 3
        assert parsed['test_jobs_total{pool="b"}'] == 5
        assert parsed["test_depth"] == 2.5
        assert parsed['test_lat_count{pool="a"}'] == 3
        assert parsed['test_lat_sum{pool="a"}'] == 104
        assert parsed['test_lat_bucket{pool="a",le="+Inf"}'] == 3

        # Cross-check every non-bucket sample against snapshot().
        snap = registry.snapshot()
        assert snap['jobs{pool="a"}'] == 3
        assert snap['jobs{pool="b"}'] == 5
        assert snap["depth"] == 2.5
        assert snap['lat{pool="a"}']["count"] == 3

        # Cumulative buckets are monotone and end at the count.
        buckets = [
            (key, v) for key, v in parsed.items()
            if key.startswith("test_lat_bucket")
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert values[-1] == 3


class TestTunables:
    """S6: single-sourced defaults with environment overrides."""

    def test_defaults(self):
        from repro.obs import DEFAULT_PROFILE_SAMPLE, DEFAULT_TRACE_CAPACITY

        assert DEFAULT_TRACE_CAPACITY == 1 << 16
        assert DEFAULT_PROFILE_SAMPLE == 16
        assert Tracer().capacity == DEFAULT_TRACE_CAPACITY

    def test_env_override_parsing(self, monkeypatch):
        from repro.obs.tracer import _env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", "128")
        assert _env_int("REPRO_TEST_KNOB", 7) == 128
        monkeypatch.setenv("REPRO_TEST_KNOB", "not-a-number")
        assert _env_int("REPRO_TEST_KNOB", 7) == 7
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        assert _env_int("REPRO_TEST_KNOB", 7) == 7
        monkeypatch.delenv("REPRO_TEST_KNOB")
        assert _env_int("REPRO_TEST_KNOB", 7) == 7

    def test_env_override_applies_in_subprocess(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_TRACE_CAPACITY="32",
                   REPRO_PROFILE_SAMPLE="4")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import DEFAULT_TRACE_CAPACITY, "
             "DEFAULT_PROFILE_SAMPLE; "
             "print(DEFAULT_TRACE_CAPACITY, DEFAULT_PROFILE_SAMPLE)"],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.split() == ["32", "4"]
