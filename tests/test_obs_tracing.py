"""Tests for the real-execution observability layer (``repro.obs``)."""

import json

import pytest

from repro.common import IllegalArgumentError
from repro.core.polynomial import PolynomialValue, horner, polynomial_value
from repro.forkjoin import ForkJoinPool
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    current_tracer,
    render_gantt,
    set_tracer,
    summarize_workers,
    to_chrome_trace,
    trace_snapshot,
    tracing,
    worker_report,
    write_chrome_trace,
)
from repro.simcore.instrument import record_decomposition
from repro.streams import Stream
from repro.streams.stream_support import StreamSupport


class TestTracer:
    def test_disabled_by_default(self):
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit("leaf", worker=0, start_ns=0, end_ns=1)
        NULL_TRACER.instant("steal", worker=0)
        assert NULL_TRACER.spans() == []

    def test_tracing_context_installs_and_restores(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
            assert tracer.enabled
        assert current_tracer() is NULL_TRACER

    def test_emit_and_ordering(self):
        tracer = Tracer()
        tracer.emit("leaf", worker=1, start_ns=100, end_ns=200)
        tracer.emit("split", worker=0, start_ns=50, end_ns=80)
        spans = tracer.spans()
        assert [s.kind for s in spans] == ["split", "leaf"]
        assert spans[1].duration_ns == 100

    def test_instant_spans(self):
        tracer = Tracer()
        tracer.instant("steal", worker=2, at_ns=42)
        (span,) = tracer.spans()
        assert span.is_instant
        assert span.start_ns == span.end_ns == 42

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("leaf", worker=0, start_ns=i, end_ns=i + 1)
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.start_ns for s in spans] == [6, 7, 8, 9]
        assert tracer.wrapped

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("function", worker=3, name="MyCollector", size=8):
            pass
        (span,) = tracer.spans()
        assert span.name == "MyCollector"
        assert span.worker == 3
        assert span.end_ns >= span.start_ns
        assert span.args == {"size": 8}

    def test_set_tracer_none_disables(self):
        set_tracer(Tracer())
        try:
            assert current_tracer().enabled
        finally:
            set_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(IllegalArgumentError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("g")
        g.set(2.5)
        g.add(-1.0)
        assert g.value == 1.5

    def test_histogram_bucket_edges(self):
        h = Histogram("h", num_buckets=6)
        # Bounded upper edges are 2^0..2^4; bucket i holds edge[i-1] < v <= edge[i].
        assert h.edges == (1, 2, 4, 8, 16)
        for value in (0, 1, 1.5, 2, 3, 16, 17, 1_000_000):
            h.observe(value)
        assert h.counts == [2, 2, 1, 0, 1, 2]
        assert h.count == 8
        assert h.total == pytest.approx(1_000_040.5)
        with pytest.raises(IllegalArgumentError):
            h.observe(-1)

    def test_histogram_quantile_bound(self):
        h = Histogram("h", num_buckets=6)
        for value in (1, 1, 1, 16):
            h.observe(value)
        assert h.quantile_bound(0.5) == 1.0
        assert h.quantile_bound(1.0) == 16.0

    def test_registry_get_or_create(self):
        reg = MetricsRegistry("test")
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(IllegalArgumentError):
            reg.gauge("x")

    def test_registry_snapshot_consistent_shape(self):
        reg = MetricsRegistry("snap")
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c", num_buckets=4).observe(2)
        snap = reg.snapshot()
        assert snap["a"] == 3
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1
        assert len(snap["c"]["counts"]) == 4


class TestChromeExport:
    def _sample_spans(self):
        return [
            Span("leaf", None, 0, 1000, 3000, {"size": 4}),
            Span("steal", None, 1, 1500, 1500, None),
            Span("combine", None, 0, 3000, 3500, None),
        ]

    def test_schema_validity(self):
        doc = to_chrome_trace(self._sample_spans(), metadata={"run": "test"})
        text = json.dumps(doc)  # must be JSON-serializable
        parsed = json.loads(text)
        assert isinstance(parsed["traceEvents"], list)
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["otherData"] == {"run": "test"}
        for event in parsed["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], (int, float))
            assert "pid" in event and "tid" in event and "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
            else:
                assert event["s"] == "t"

    def test_timestamps_rebased_to_zero(self):
        events = to_chrome_trace(self._sample_spans())["traceEvents"]
        assert min(e["ts"] for e in events) == 0
        leaf = next(e for e in events if e["cat"] == "leaf")
        assert leaf["dur"] == pytest.approx(2.0)  # 2000 ns = 2 µs

    def test_empty_trace(self):
        assert to_chrome_trace([])["traceEvents"] == []

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "sub" / "t.json", self._sample_spans())
        assert path.exists()
        assert len(json.loads(path.read_text())["traceEvents"]) == 3


class TestReports:
    def test_snapshot_counts(self):
        spans = [
            Span("leaf", None, 0, 0, 10),
            Span("leaf", None, 1, 5, 9),
            Span("steal", None, 1, 6, 6),
        ]
        snap = trace_snapshot(spans)
        assert snap["counts"] == {"leaf": 2, "steal": 1}
        assert snap["duration_ns"]["leaf"] == 14
        assert snap["per_worker"][1] == {"leaf": 1, "steal": 1}

    def test_gantt_rows_and_glyphs(self):
        spans = [
            Span("task", None, 0, 0, 1000),
            Span("leaf", None, 0, 100, 900),
            Span("steal", None, 1, 500, 500),
        ]
        chart = render_gantt(spans, width=40)
        lines = chart.splitlines()
        assert lines[1].startswith("w0 ")
        assert "#" in lines[1]
        assert "*" in lines[2]

    def test_gantt_width_validated(self):
        with pytest.raises(IllegalArgumentError):
            render_gantt([Span("leaf", None, 0, 0, 1)], width=5)

    def test_empty_gantt(self):
        assert render_gantt([]) == "(empty trace)"

    def test_worker_report_includes_utilization(self):
        spans = [Span("task", None, 0, 0, 1000), Span("task", None, 1, 0, 500)]
        report = worker_report(spans, width=40)
        assert "util" in report
        assert "w0" in report and "w1" in report

    def test_summarize_workers_busy_not_double_counted(self):
        # leaf spans nest inside the task span: busy time is task time only.
        spans = [Span("task", None, 0, 0, 1000), Span("leaf", None, 0, 100, 900)]
        (summary,) = summarize_workers(spans)
        assert summary.busy_ns == 1000
        assert summary.utilization == 1.0


class TestTracedExecution:
    def test_on_off_parity(self):
        coeffs = [float(i % 7) for i in range(2**10)]
        with ForkJoinPool(parallelism=4, name="parity") as pool:
            plain = polynomial_value(coeffs, 0.5, pool=pool, target_size=2**7)
            with tracing() as tracer:
                traced = polynomial_value(coeffs, 0.5, pool=pool, target_size=2**7)
        assert traced == plain == pytest.approx(horner(coeffs, 0.5))
        assert len(tracer.spans()) > 0
        assert current_tracer() is NULL_TRACER

    def test_stream_collect_emits_decomposition_spans(self):
        n, target = 2**12, 2**9
        with ForkJoinPool(parallelism=4, name="spans") as pool:
            with tracing() as tracer:
                total = (
                    Stream.range(0, n).parallel().with_pool(pool)
                    .with_target_size(target).sum()
                )
        assert total == n * (n - 1) // 2
        counts = trace_snapshot(tracer.spans())["counts"]
        leaves = n // target
        assert counts["leaf"] == leaves
        assert counts["split"] == leaves - 1
        assert counts["combine"] == leaves - 1

    def test_real_trace_matches_instrumented_decomposition(self):
        """The Figure-3 workload: the observed real trace agrees with the
        decomposition recorded by ``repro.simcore.instrument``."""
        n, target, x = 2**10, 2**7, 1.001
        coeffs = [float(i % 5) for i in range(n)]

        # Ground truth: a real run over a recording spliterator.
        recorder_pv = PolynomialValue(x)
        wrapped, recording = record_decomposition(
            recorder_pv.create_spliterator(coeffs)
        )
        with ForkJoinPool(parallelism=4, name="rec") as pool:
            recorded_value = (
                StreamSupport.stream(wrapped, parallel=True)
                .with_pool(pool).with_target_size(target).collect(recorder_pv)
            )

        # Observed: the same workload traced for real.
        traced_pv = PolynomialValue(x)
        with ForkJoinPool(parallelism=4, name="obs") as pool:
            with tracing() as tracer:
                traced_value = (
                    StreamSupport.stream(
                        traced_pv.create_spliterator(coeffs), parallel=True
                    )
                    .with_pool(pool).with_target_size(target).collect(traced_pv)
                )
            stats = pool.stats()

        assert traced_value == pytest.approx(recorded_value)
        spans = tracer.spans()
        counts = trace_snapshot(spans)["counts"]
        # Decomposition is deterministic: same split/leaf structure.
        assert counts["leaf"] == len(recording.leaves())
        assert counts["split"] == len(recording.splits())
        assert counts["combine"] == counts["split"]

        # The exported Chrome trace carries the same counts...
        events = to_chrome_trace(spans)["traceEvents"]
        for kind in ("leaf", "split", "combine"):
            assert sum(1 for e in events if e["cat"] == kind) == counts[kind]
        # ...and per-worker task events agree with the pool's own stats.
        for row in stats["per_worker"]:
            observed = sum(
                1
                for e in events
                if e["cat"] == "task" and e["tid"] == row["worker"]
            )
            assert observed == row["executed"]
