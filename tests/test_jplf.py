"""Tests for the JPLF baseline framework."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.forkjoin import ForkJoinPool
from repro.jplf import (
    ForkJoinExecutor,
    JplfFft,
    JplfIdentity,
    JplfMap,
    JplfPolynomialValue,
    JplfPrefixSum,
    JplfReduce,
    JplfSort,
    SequentialExecutor,
)
from repro.powerlist import PowerList


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="jplf-test")
    yield p
    p.shutdown()


@pytest.fixture(scope="module")
def executors(pool):
    return [
        SequentialExecutor(),
        SequentialExecutor(threshold=8),
        ForkJoinExecutor(pool),
        ForkJoinExecutor(pool, threshold=4),
    ]


def pow2_lists(max_log=6):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-100, 100), min_size=2**k, max_size=2**k)
    )


class TestTemplateMethod:
    def test_compute_recursion(self):
        fn = JplfMap(PowerList([1, 2, 3, 4]), lambda x: x * 10)
        assert fn.compute() == [10, 20, 30, 40]

    def test_split_respects_operator(self):
        data = PowerList([1, 2, 3, 4])
        tie_fn = JplfMap(data, lambda x: x)
        left, right = tie_fn.split()
        assert list(left) == [1, 2]

        zip_fn = JplfPolynomialValue(data, 1.0)
        even, odd = zip_fn.split()
        assert list(even) == [1, 3]

    def test_unknown_operator_rejected(self):
        fn = JplfMap(PowerList([1, 2]), lambda x: x)
        fn.operator = "bogus"
        with pytest.raises(IllegalArgumentError):
            fn.split()

    def test_descending_phase_no_shared_state(self):
        # The children get x² structurally; nothing global is touched.
        fn = JplfPolynomialValue(PowerList([1.0, 2.0, 3.0, 4.0]), 3.0)
        left_fn, right_fn = fn.subfunctions()
        assert left_fn.x == 9.0
        assert right_fn.x == 9.0
        assert fn.x == 3.0


class TestFunctionsAcrossExecutors:
    def test_identity(self, executors):
        data = list(range(64))
        for ex in executors:
            assert ex.execute(JplfIdentity(PowerList(data))) == data

    def test_map(self, executors):
        data = list(range(64))
        for ex in executors:
            out = ex.execute(JplfMap(PowerList(data), lambda x: x * x))
            assert out == [x * x for x in data]

    def test_reduce(self, executors):
        data = [(i * 31) % 97 for i in range(128)]
        for ex in executors:
            assert ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b)) == sum(data)

    def test_reduce_non_commutative(self, executors):
        data = [chr(ord("a") + i % 26) for i in range(32)]
        for ex in executors:
            out = ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b))
            assert out == "".join(data)

    def test_polynomial(self, executors):
        rng = random.Random(1)
        coeffs = [rng.uniform(-1, 1) for _ in range(256)]
        expected = np.polyval(coeffs, 0.95)
        for ex in executors:
            out = ex.execute(JplfPolynomialValue(PowerList(coeffs), 0.95))
            assert out == pytest.approx(expected, rel=1e-9)

    def test_fft(self, executors):
        rng = random.Random(2)
        data = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(64)]
        expected = np.fft.fft(data)
        for ex in executors:
            out = ex.execute(JplfFft(PowerList(data)))
            np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_prefix_sum(self, executors):
        data = [(i * 7) % 23 for i in range(64)]
        expected = list(itertools.accumulate(data))
        for ex in executors:
            prefix, total = ex.execute(JplfPrefixSum(PowerList(data)))
            assert prefix == expected
            assert total == expected[-1]

    def test_sort(self, executors):
        rng = random.Random(3)
        data = [rng.randint(0, 999) for _ in range(128)]
        for ex in executors:
            assert ex.execute(JplfSort(PowerList(data))) == sorted(data)


class TestAgreementWithStreamAdaptation:
    """The JPLF baseline and the stream adaptation must agree exactly."""

    def test_polynomial_agreement(self, pool):
        from repro.core import polynomial_value

        rng = random.Random(4)
        coeffs = [rng.uniform(-1, 1) for _ in range(512)]
        stream_out = polynomial_value(coeffs, 0.99, pool=pool)
        jplf_out = ForkJoinExecutor(pool).execute(
            JplfPolynomialValue(PowerList(coeffs), 0.99)
        )
        assert stream_out == pytest.approx(jplf_out, rel=1e-12)

    def test_fft_agreement(self, pool):
        from repro.core import fft

        rng = random.Random(5)
        data = [complex(rng.uniform(-1, 1)) for _ in range(128)]
        np.testing.assert_allclose(
            fft(data, pool=pool),
            ForkJoinExecutor(pool).execute(JplfFft(PowerList(data))),
            rtol=1e-10,
            atol=1e-12,
        )

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists())
    def test_map_agreement_property(self, data):
        from repro.core import PowerMapCollector, power_collect

        stream_out = power_collect(
            PowerMapCollector(lambda x: 3 * x - 1, "tie"), data, parallel=False
        )
        jplf_out = SequentialExecutor().execute(
            JplfMap(PowerList(data), lambda x: 3 * x - 1)
        )
        assert stream_out == jplf_out


class TestViewDiscipline:
    def test_no_copies_during_descent(self):
        # The JPLF descent only re-views: all sub-function arguments share
        # the root storage.
        data = list(range(16))
        fn = JplfIdentity(PowerList(data))
        left_fn, right_fn = fn.subfunctions()
        assert left_fn.data.storage is data
        assert right_fn.data.storage is data
        deeper, _ = left_fn.subfunctions()
        assert deeper.data.storage is data

    def test_threshold_validation(self):
        with pytest.raises(IllegalArgumentError):
            SequentialExecutor(threshold=0)
