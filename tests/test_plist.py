"""Tests for the PList multi-way generalization."""

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.powerlist.plist import PList, plist_induction


class TestConstruction:
    def test_any_positive_length(self):
        assert len(PList([1, 2, 3])) == 3

    def test_empty_rejected(self):
        with pytest.raises(IllegalArgumentError):
            PList([])

    def test_singleton(self):
        s = PList.singleton(9)
        assert s.is_singleton() and s[0] == 9

    def test_from_iterable(self):
        assert list(PList.from_iterable(range(3))) == [0, 1, 2]


class TestTieZipAll:
    def test_tie_all_matches_paper_example(self):
        # p.i = [i*3, i*3+1, i*3+2]; [ | i : i in 3 : p.i] = [0..8]
        parts = [PList([i * 3, i * 3 + 1, i * 3 + 2]) for i in range(3)]
        assert list(PList.tie_all(parts)) == list(range(9))

    def test_zip_all_matches_paper_example(self):
        # [ natural-zip i : i in 3 : p.i] = [0,3,6,1,4,7,2,5,8]
        parts = [PList([i * 3, i * 3 + 1, i * 3 + 2]) for i in range(3)]
        assert list(PList.zip_all(parts)) == [0, 3, 6, 1, 4, 7, 2, 5, 8]

    def test_similarity_enforced(self):
        with pytest.raises(IllegalArgumentError):
            PList.tie_all([PList([1]), PList([1, 2])])
        with pytest.raises(IllegalArgumentError):
            PList.zip_all([])


class TestSplits:
    def test_tie_split_n(self):
        parts = PList(list(range(9))).tie_split_n(3)
        assert [list(p) for p in parts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_zip_split_n(self):
        parts = PList([0, 3, 6, 1, 4, 7, 2, 5, 8]).zip_split_n(3)
        assert [list(p) for p in parts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_splits_are_views(self):
        storage = list(range(6))
        p = PList(storage)
        for part in p.tie_split_n(2) + p.zip_split_n(3):
            assert part.storage is storage

    def test_arity_must_divide(self):
        with pytest.raises(IllegalArgumentError):
            PList(list(range(9))).tie_split_n(2)

    def test_arity_must_be_at_least_two(self):
        with pytest.raises(IllegalArgumentError):
            PList(list(range(4))).tie_split_n(1)

    @given(st.lists(st.integers(), min_size=1, max_size=60))
    def test_tie_roundtrip_any_divisor(self, xs):
        p = PList(xs)
        n = len(xs)
        for arity in range(2, n + 1):
            if n % arity == 0:
                assert list(PList.tie_all(p.tie_split_n(arity))) == xs

    @given(st.lists(st.integers(), min_size=1, max_size=60))
    def test_zip_roundtrip_any_divisor(self, xs):
        p = PList(xs)
        n = len(xs)
        for arity in range(2, n + 1):
            if n % arity == 0:
                assert list(PList.zip_all(p.zip_split_n(arity))) == xs


class TestAccess:
    def test_setitem(self):
        storage = [1, 2, 3]
        p = PList(storage)
        p[1] = 99
        assert storage == [1, 99, 3]

    def test_negative_index(self):
        assert PList([1, 2, 3])[-1] == 3

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            PList([1])[1]
        with pytest.raises(IndexError):
            PList([1])[1] = 0

    def test_slice_view(self):
        p = PList(list(range(6)))
        assert list(p[1:4]) == [1, 2, 3]

    def test_empty_slice_rejected(self):
        with pytest.raises(IllegalArgumentError):
            PList([1, 2])[1:1]

    def test_map_and_eq(self):
        assert PList([1, 2]).map(lambda x: -x) == PList([-1, -2])
        assert PList([1]).__eq__("x") is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PList([1]))

    def test_repr(self):
        assert repr(PList([1])) == "PList([1])"


class TestPlistInduction:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=48))
    def test_sum_smallest_prime_arity(self, xs):
        def arity_of(n):
            for d in range(2, n + 1):
                if n % d == 0:
                    return d
            return n

        p = PList(xs)
        total = plist_induction(
            p, arity_of, lambda a: a, lambda parts: sum(parts)
        )
        assert total == sum(xs)

    def test_zip_variant(self):
        p = PList(list(range(9)))
        out = plist_induction(
            p,
            lambda n: 3,
            lambda a: [a],
            lambda parts: [x for part in parts for x in part],
            use_zip=True,
        )
        assert sorted(out) == list(range(9))
