"""Nested parallelism: parallel work launched from inside parallel work.

The classic fork/join hazard — a worker blocking on a nested computation
can deadlock a bounded pool unless joins *help*.  These tests pin the
helping-join guarantee across every combination the library offers.
"""

import pytest

from repro.core import polynomial_value, power_collect, PowerMapCollector
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfMap, JplfReduce
from repro.powerlist import PowerList
from repro.streams import Stream, stream_of


@pytest.fixture(scope="module")
def pool():
    # Deliberately narrow: 2 workers maximizes the deadlock opportunity.
    p = ForkJoinPool(parallelism=2, name="nested")
    yield p
    p.shutdown()


class TestNestedStreams:
    def test_parallel_stream_inside_parallel_stream(self, pool):
        def inner_sum(k):
            return Stream.range(0, k).parallel().with_pool(pool).sum()

        out = (
            Stream.range(1, 50)
            .parallel()
            .with_pool(pool)
            .map(inner_sum)
            .to_list()
        )
        assert out == [k * (k - 1) // 2 for k in range(1, 50)]

    def test_three_levels_deep(self, pool):
        def level3(x):
            return Stream.range(0, x % 5 + 1).parallel().with_pool(pool).count()

        def level2(x):
            return (
                Stream.range(0, x % 3 + 1)
                .parallel()
                .with_pool(pool)
                .map(level3)
                .sum()
            )

        out = Stream.range(0, 20).parallel().with_pool(pool).map(level2).sum()
        expected = sum(
            sum((y % 5 + 1) for y in range(x % 3 + 1)) for x in range(20)
        )
        assert out == expected

    def test_collect_inside_collect(self, pool):
        from repro.streams import Collectors

        out = (
            Stream.range(0, 10)
            .parallel()
            .with_pool(pool)
            .map(
                lambda k: stream_of(list(range(k)))
                .parallel()
                .with_pool(pool)
                .collect(Collectors.to_list())
            )
            .to_list()
        )
        assert out == [list(range(k)) for k in range(10)]


class TestNestedPowerCollect:
    def test_power_collect_inside_stream(self, pool):
        coeffs_sets = [[float(i)] * 16 for i in range(8)]
        out = (
            stream_of(coeffs_sets)
            .parallel()
            .with_pool(pool)
            .map(lambda cs: polynomial_value(cs, 1.0, pool=pool))
            .to_list()
        )
        assert out == [sum(cs) for cs in coeffs_sets]

    def test_jplf_inside_power_collect(self, pool):
        executor = ForkJoinExecutor(pool)

        def nested(x):
            return executor.execute(
                JplfReduce(PowerList([x] * 8), lambda a, b: a + b)
            )

        out = power_collect(PowerMapCollector(nested, "tie"), list(range(16)), pool=pool)
        assert out == [x * 8 for x in range(16)]

    def test_jplf_inside_jplf(self, pool):
        executor = ForkJoinExecutor(pool)

        def inner(x):
            return executor.execute(JplfMap(PowerList([x, x]), lambda v: v + 1))

        outer = executor.execute(JplfMap(PowerList(list(range(8))), inner))
        assert outer == [[x + 1, x + 1] for x in range(8)]


class TestPoolSaturation:
    def test_many_nested_roots_single_worker(self):
        # The degenerate pool: 1 worker must still finish nested work.
        with ForkJoinPool(parallelism=1, name="solo") as solo:
            out = (
                Stream.range(0, 10)
                .parallel()
                .with_pool(solo)
                .map(
                    lambda k: Stream.range(0, 10)
                    .parallel()
                    .with_pool(solo)
                    .sum()
                )
                .sum()
            )
            assert out == 10 * 45
