"""Tests for sequential Stream pipeline semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalArgumentError, IllegalStateError
from repro.streams import Collectors, Optional, Stream, stream_of


class TestFactories:
    def test_of_items(self):
        assert Stream.of_items(1, 2, 3).to_list() == [1, 2, 3]

    def test_of_iterable(self):
        assert Stream.of_iterable(range(4)).to_list() == [0, 1, 2, 3]

    def test_empty(self):
        assert Stream.empty().to_list() == []

    def test_range(self):
        assert Stream.range(1, 5).to_list() == [1, 2, 3, 4]

    def test_iterate_with_limit(self):
        assert Stream.iterate(1, lambda x: x * 2).limit(5).to_list() == [1, 2, 4, 8, 16]

    def test_generate_with_limit(self):
        assert Stream.generate(lambda: 7).limit(3).to_list() == [7, 7, 7]

    def test_concat(self):
        s = Stream.concat(Stream.of_items(1, 2), Stream.of_items(3))
        assert s.to_list() == [1, 2, 3]

    def test_stream_of_helper(self):
        assert stream_of([5, 6]).to_list() == [5, 6]


class TestIntermediateOps:
    def test_map(self):
        assert Stream.range(0, 4).map(lambda x: x * x).to_list() == [0, 1, 4, 9]

    def test_filter(self):
        assert Stream.range(0, 10).filter(lambda x: x % 3 == 0).to_list() == [0, 3, 6, 9]

    def test_flat_map(self):
        out = Stream.of_items([1, 2], [], [3]).flat_map(lambda xs: xs).to_list()
        assert out == [1, 2, 3]

    def test_peek_observes_without_changing(self):
        seen = []
        out = Stream.of_items(1, 2).peek(seen.append).to_list()
        assert out == [1, 2]
        assert seen == [1, 2]

    def test_distinct(self):
        assert Stream.of_items(1, 2, 1, 3, 2).distinct().to_list() == [1, 2, 3]

    def test_sorted(self):
        assert Stream.of_items(3, 1, 2).sorted().to_list() == [1, 2, 3]

    def test_sorted_with_key_and_reverse(self):
        out = Stream.of_items("bb", "a", "ccc").sorted(key=len, reverse=True).to_list()
        assert out == ["ccc", "bb", "a"]

    def test_limit(self):
        assert Stream.range(0, 100).limit(3).to_list() == [0, 1, 2]

    def test_limit_zero(self):
        assert Stream.range(0, 5).limit(0).to_list() == []

    def test_limit_negative_rejected(self):
        with pytest.raises(IllegalArgumentError):
            Stream.range(0, 5).limit(-1)

    def test_skip(self):
        assert Stream.range(0, 5).skip(3).to_list() == [3, 4]

    def test_skip_more_than_size(self):
        assert Stream.range(0, 3).skip(10).to_list() == []

    def test_take_while(self):
        assert Stream.of_items(1, 2, 3, 1).take_while(lambda x: x < 3).to_list() == [1, 2]

    def test_drop_while(self):
        assert Stream.of_items(1, 2, 3, 1).drop_while(lambda x: x < 3).to_list() == [3, 1]

    def test_fusion_order(self):
        # map then filter sees mapped values; filter then map sees raw.
        a = Stream.range(0, 5).map(lambda x: x * 2).filter(lambda x: x > 4).to_list()
        assert a == [6, 8]
        b = Stream.range(0, 5).filter(lambda x: x > 2).map(lambda x: x * 2).to_list()
        assert b == [6, 8]

    def test_laziness_short_circuit(self):
        # limit stops upstream evaluation: peek must not see later elements.
        seen = []
        Stream.range(0, 1000).peek(seen.append).limit(3).to_list()
        assert len(seen) == 3

    def test_infinite_take_while(self):
        out = Stream.iterate(1, lambda x: x + 1).take_while(lambda x: x <= 4).to_list()
        assert out == [1, 2, 3, 4]


class TestTerminalOps:
    def test_reduce_one_arg_nonempty(self):
        assert Stream.of_items(1, 2, 3).reduce(lambda a, b: a + b) == Optional.of(6)

    def test_reduce_one_arg_empty(self):
        assert Stream.empty().reduce(lambda a, b: a + b) == Optional.empty()

    def test_reduce_with_identity(self):
        assert Stream.of_items(1, 2, 3).reduce(10, lambda a, b: a + b) == 16

    def test_reduce_identity_on_empty(self):
        assert Stream.empty().reduce(42, lambda a, b: a + b) == 42

    def test_reduce_three_arg(self):
        # map each int to its string length contribution via accumulator
        out = Stream.of_items("a", "bb", "ccc").reduce(
            0, lambda acc, s: acc + len(s), lambda a, b: a + b
        )
        assert out == 6

    def test_reduce_wrong_arity(self):
        with pytest.raises(IllegalArgumentError):
            Stream.of_items(1).reduce()

    def test_count(self):
        assert Stream.range(0, 17).count() == 17

    def test_sum(self):
        assert Stream.range(0, 5).sum() == 10
        assert Stream.empty().sum() == 0

    def test_min_max(self):
        assert Stream.of_items(3, 1, 2).min().get() == 1
        assert Stream.of_items(3, 1, 2).max().get() == 3
        assert Stream.empty().min().is_empty()

    def test_min_with_key(self):
        assert Stream.of_items("ccc", "a", "bb").min(key=len).get() == "a"

    def test_matches(self):
        s = lambda: Stream.range(0, 10)
        assert s().any_match(lambda x: x == 5)
        assert not s().any_match(lambda x: x == 50)
        assert s().all_match(lambda x: x < 10)
        assert not s().all_match(lambda x: x < 5)
        assert s().none_match(lambda x: x > 100)
        assert not s().none_match(lambda x: x == 3)

    def test_matches_on_empty(self):
        assert not Stream.empty().any_match(lambda x: True)
        assert Stream.empty().all_match(lambda x: False)
        assert Stream.empty().none_match(lambda x: True)

    def test_match_short_circuits(self):
        seen = []
        Stream.range(0, 1000).peek(seen.append).any_match(lambda x: x == 2)
        assert len(seen) == 3

    def test_find_first(self):
        assert Stream.of_items(7, 8).find_first().get() == 7
        assert Stream.empty().find_first().is_empty()

    def test_find_any(self):
        assert Stream.of_items(7).find_any().get() == 7

    def test_for_each(self):
        out = []
        Stream.range(0, 3).for_each(out.append)
        assert out == [0, 1, 2]

    def test_for_each_ordered(self):
        out = []
        Stream.range(0, 3).for_each_ordered(out.append)
        assert out == [0, 1, 2]

    def test_iterator_lazy(self):
        seen = []
        it = iter(Stream.range(0, 100).peek(seen.append))
        assert next(it) == 0
        assert next(it) == 1
        assert len(seen) <= 3  # nowhere near 100 elements evaluated

    def test_iterator_full_drain(self):
        assert list(Stream.range(0, 5).map(lambda x: -x)) == [0, -1, -2, -3, -4]

    def test_iterator_with_flatmap(self):
        out = list(Stream.of_items([1, 2], [3]).flat_map(lambda x: x))
        assert out == [1, 2, 3]


class TestCollectRawTriple:
    def test_paper_joining_example_sequential(self):
        # Sequential: combiner unused, no separator between partials needed.
        words = ["streams", "meet", "powerlists"]
        out = stream_of(words).collect(
            lambda: [],
            lambda acc, w: acc.append(w),
            lambda a, b: a.extend(b),
        )
        assert out == words

    def test_collect_requires_all_three(self):
        with pytest.raises(IllegalArgumentError):
            Stream.of_items(1).collect(lambda: [])


class TestSingleUse:
    def test_terminal_consumes(self):
        s = Stream.of_items(1, 2)
        s.to_list()
        with pytest.raises(IllegalStateError):
            s.to_list()

    def test_intermediate_links(self):
        s = Stream.of_items(1, 2)
        s.map(lambda x: x)
        with pytest.raises(IllegalStateError):
            s.filter(lambda x: True)

    def test_mode_switch_links(self):
        s = Stream.of_items(1)
        s.parallel()
        with pytest.raises(IllegalStateError):
            s.sequential()


class TestPropertySemantics:
    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_map_matches_builtin(self, xs):
        assert stream_of(xs).map(lambda x: x * 3).to_list() == [x * 3 for x in xs]

    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_filter_matches_builtin(self, xs):
        assert stream_of(xs).filter(lambda x: x % 2 == 0).to_list() == [
            x for x in xs if x % 2 == 0
        ]

    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_sorted_matches_builtin(self, xs):
        assert stream_of(xs).sorted().to_list() == sorted(xs)

    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_sum_matches_builtin(self, xs):
        assert stream_of(xs).sum() == sum(xs)

    @given(st.lists(st.integers(-100, 100), max_size=60), st.integers(0, 70))
    def test_limit_skip_match_slicing(self, xs, n):
        assert stream_of(xs).limit(n).to_list() == xs[:n]
        assert stream_of(xs).skip(n).to_list() == xs[n:]

    @given(st.lists(st.integers(0, 10), max_size=60))
    def test_distinct_matches_dict_fromkeys(self, xs):
        assert stream_of(xs).distinct().to_list() == list(dict.fromkeys(xs))
