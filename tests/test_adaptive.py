"""The metrics-driven ``auto`` split policy (``repro.streams.adaptive``).

Unit-level: decisions from synthetic observations (bootstrap, cost-based
sizing, coarsen/deepen feedback, chunk clamping).  Integration-level:
``with_target_size("auto")`` end to end on the thread backend, and the
explain-vs-execution consistency pin — the plan's split tree must equal
the traced leaf count even when the adaptive policy overrides the
threshold, because both sides call the same decision function.
"""

import pytest

from repro.common import IllegalArgumentError
from repro.forkjoin import ForkJoinPool
from repro.obs import tracing
from repro.streams import Stream
from repro.streams import adaptive
from repro.streams.adaptive import (
    AUTO,
    RunObservation,
    SplitPolicy,
    TARGET_CHUNK_SPAN_NS,
    UNKNOWN_SIZE_BASE,
    _pow2_at_most,
    compute_target_size,
    decide_threshold,
    shape_key,
    wants_auto,
)
from repro.streams.spliterator import UNKNOWN_SIZE
from repro.streams.spliterators import ListSpliterator, RangeSpliterator


def _work(x):
    return x * 3


def _other(x):
    return x + 1


@pytest.fixture(autouse=True)
def _clean_policy():
    """Each test starts from an empty memo and the 'fixed' session mode."""
    adaptive.reset_split_policy()
    previous = adaptive.set_split_policy("fixed")
    yield
    adaptive.set_split_policy(previous)
    adaptive.reset_split_policy()
    adaptive.split_policy_stats(reset=True)


def _observe(policy, key, *, leaf_ns, leaf_elements, parallelism=4,
             target_size=64, idle_wakeups=0, steals=1):
    obs = RunObservation(key, parallelism, target_size)
    for ns, el in zip(leaf_ns, leaf_elements):
        obs.record_leaf(ns, el)
    obs.idle_wakeups = idle_wakeups
    obs.steals = steals
    policy.observe_run(obs)
    return obs


class TestFixedRules:
    def test_explicit_integer_always_wins(self):
        decision = decide_threshold(4096, 4, explicit=128)
        assert decision.target_size == 128
        assert decision.source == "with_target_size"
        assert decision.adaptive is False

    def test_sized_java_rule(self):
        decision = decide_threshold(4096, 4)
        assert decision.target_size == 4096 // 16
        assert decision.source == "size // (4 × parallelism)"

    def test_unknown_size_scales_with_parallelism(self):
        decision = decide_threshold(UNKNOWN_SIZE, 8)
        assert decision.target_size == UNKNOWN_SIZE_BASE // 8
        assert decision.source == "unknown size → default // parallelism"


class TestShapeKey:
    def test_distinguishes_callables(self):
        s = RangeSpliterator(0, 16)
        ops_a = Stream.range(0, 16).map(_work)._ops
        ops_b = Stream.range(0, 16).map(_other)._ops
        assert shape_key(ops_a, s, 4) != shape_key(ops_b, s, 4)

    def test_distinguishes_backend_and_parallelism(self):
        ops = Stream.range(0, 16).map(_work)._ops
        s = RangeSpliterator(0, 16)
        assert shape_key(ops, s, 4) != shape_key(ops, s, 8)
        assert shape_key(ops, s, 4, backend="threads") != shape_key(
            ops, s, 4, backend="process"
        )

    def test_excludes_size(self):
        ops = Stream.range(0, 16).map(_work)._ops
        assert shape_key(ops, RangeSpliterator(0, 16), 4) == shape_key(
            ops, RangeSpliterator(0, 1 << 20), 4
        )

    def test_source_type_matters(self):
        ops = Stream.range(0, 16).map(_work)._ops
        assert shape_key(ops, RangeSpliterator(0, 16), 4) != shape_key(
            ops, ListSpliterator([0] * 16), 4
        )


class TestPolicyDecisions:
    KEY = ("threads", "RangeSpliterator", 4, ())

    def test_bootstrap_uses_java_rule(self):
        policy = SplitPolicy()
        decision = policy.decide(4096, 4, self.KEY)
        assert decision.target_size == compute_target_size(4096, 4)
        assert decision.chunk_size is None
        assert decision.inputs["basis"] == "bootstrap (no observed cost)"
        assert decision.adaptive is True

    def test_cost_based_target(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        # 10_000 elements costing 1ms total → 100ns per element.
        _observe(policy, self.KEY, leaf_ns=[1_000_000],
                 leaf_elements=[10_000])
        decision = policy.decide(1 << 16, 4, self.KEY)
        # 1ms span target ÷ 100ns/element = 10_000-element leaves, well
        # above Java's 4096-element rule for this size → cost coarsens.
        assert decision.target_size == 10_000
        assert decision.inputs["basis"] == (
            "target leaf span ÷ observed cost × bias"
        )

    def test_cost_never_splits_deeper_than_java_rule(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        # 10µs per element → the cost target would be 100-element leaves,
        # far below Java's size // (4 × parallelism).  Splitting deeper
        # than Java's rule buys no extra parallelism, only task overhead,
        # so the Java target acts as a floor at neutral bias.  (Enough
        # busy leaves that the deepen heuristic stays quiet.)
        _observe(policy, self.KEY, leaf_ns=[12_500_000] * 8,
                 leaf_elements=[1_250] * 8)
        decision = policy.decide(1 << 20, 4, self.KEY)
        assert decision.target_size == compute_target_size(1 << 20, 4)
        assert decision.inputs["basis"] == (
            "size // (4 × parallelism) floor × bias"
        )

    def test_deepen_bias_lowers_the_java_floor(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        _observe(policy, self.KEY, leaf_ns=[12_500_000] * 8,
                 leaf_elements=[1_250] * 8)
        # Idle workers drive the bias below 1 — only then may the policy
        # split deeper than Java's rule.
        _observe(policy, self.KEY, leaf_ns=[12_500_000] * 8,
                 leaf_elements=[1_250] * 8, idle_wakeups=3, steals=5)
        assert policy.memo_entry(self.KEY)["bias"] == 0.5
        decision = policy.decide(1 << 20, 4, self.KEY)
        assert decision.target_size == compute_target_size(1 << 20, 4) // 2

    def test_target_clamped_to_size(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        _observe(policy, self.KEY, leaf_ns=[1_000], leaf_elements=[10_000])
        decision = policy.decide(256, 4, self.KEY)
        assert decision.target_size == 256  # never above the input size

    def test_chunk_is_pow2_and_clamped(self):
        policy = SplitPolicy()
        # 10µs/element → 100 elements per chunk span, below the floor.
        _observe(policy, self.KEY, leaf_ns=[100_000_000],
                 leaf_elements=[10_000])
        assert policy.decide(1 << 20, 4, self.KEY).chunk_size == 1 << 10
        policy.reset()
        # 100 ns/element → 10_000 → rounded down to 8192.
        _observe(policy, self.KEY, leaf_ns=[1_000_000],
                 leaf_elements=[10_000])
        chunk = policy.decide(1 << 20, 4, self.KEY).chunk_size
        assert chunk == 1 << 13
        assert chunk & (chunk - 1) == 0
        policy.reset()
        # Nearly free elements → ceiling.
        _observe(policy, self.KEY, leaf_ns=[1_000],
                 leaf_elements=[1_000_000])
        assert policy.decide(1 << 20, 4, self.KEY).chunk_size == 1 << 16

    def test_pow2_at_most(self):
        assert _pow2_at_most(255, 16, 65536) == 128
        assert _pow2_at_most(256, 16, 65536) == 256
        assert _pow2_at_most(1, 16, 65536) == 16
        assert _pow2_at_most(1 << 30, 16, 65536) == 65536


class TestFeedback:
    KEY = ("threads", "RangeSpliterator", 4, ())

    def test_coarsen_doubles_bias(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        # Many tiny leaves, median far below a quarter of the target.
        _observe(policy, self.KEY, leaf_ns=[10_000] * 8,
                 leaf_elements=[100] * 8)
        entry = policy.memo_entry(self.KEY)
        assert entry["bias"] == 2.0
        assert policy.stats()["coarsened"] == 1

    def test_deepen_halves_bias_on_idle_workers(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        # Leaves overran 2× the target while workers reported idle wakeups.
        _observe(policy, self.KEY, leaf_ns=[5_000_000] * 8,
                 leaf_elements=[100] * 8, idle_wakeups=3, steals=5)
        entry = policy.memo_entry(self.KEY)
        assert entry["bias"] == 0.5
        assert policy.stats()["deepened"] == 1

    def test_long_leaves_with_busy_workers_do_not_deepen(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        # Overrunning leaves but zero idleness, active stealing, and
        # plenty of leaves: nothing to gain from splitting deeper.
        _observe(policy, self.KEY, leaf_ns=[5_000_000] * 8,
                 leaf_elements=[100] * 8, idle_wakeups=0, steals=5)
        assert policy.memo_entry(self.KEY)["bias"] == 1.0
        assert policy.stats()["deepened"] == 0

    def test_bias_saturates(self):
        policy = SplitPolicy(target_leaf_span_ns=1_000_000)
        for _ in range(20):
            _observe(policy, self.KEY, leaf_ns=[10_000] * 8,
                     leaf_elements=[100] * 8)
        assert policy.memo_entry(self.KEY)["bias"] == 64.0

    def test_cost_is_ewma(self):
        policy = SplitPolicy()
        _observe(policy, self.KEY, leaf_ns=[1_000], leaf_elements=[10])
        assert policy.memo_entry(self.KEY)["cost_per_element_ns"] == 100.0
        _observe(policy, self.KEY, leaf_ns=[3_000], leaf_elements=[10])
        assert policy.memo_entry(self.KEY)["cost_per_element_ns"] == 200.0

    def test_cancelled_runs_never_observed(self):
        policy = SplitPolicy()
        obs = RunObservation(self.KEY, 4, 64)
        # No record_leaf calls (the terminal was cancelled): a complete()
        # on an empty sheet must not create a memo entry.
        policy.observe_run(obs)
        assert policy.memo_entry(self.KEY) is None

    def test_memo_bounded(self):
        policy = SplitPolicy()
        for i in range(adaptive._MEMO_LIMIT + 10):
            _observe(policy, ("threads", "R", 4, (("op", str(i)),)),
                     leaf_ns=[1_000], leaf_elements=[10])
        assert policy.stats()["memo_size"] == adaptive._MEMO_LIMIT


class TestControls:
    def test_default_mode_is_fixed(self):
        assert adaptive.split_policy_mode() == "fixed"
        assert not wants_auto(None)
        assert wants_auto(AUTO)

    def test_set_and_restore(self):
        assert adaptive.set_split_policy("auto") == "fixed"
        assert adaptive.split_policy_mode() == "auto"
        assert wants_auto(None)
        assert adaptive.set_split_policy("fixed") == "auto"

    def test_context_manager(self):
        with adaptive.split_policy("auto"):
            assert adaptive.split_policy_mode() == "auto"
        assert adaptive.split_policy_mode() == "fixed"

    def test_rejects_unknown_policy(self):
        with pytest.raises(IllegalArgumentError):
            adaptive.set_split_policy("dynamic")

    def test_explicit_integer_beats_auto_mode(self):
        with adaptive.split_policy("auto"):
            assert not wants_auto(64)
            decision = decide_threshold(4096, 4, explicit=64)
            assert decision.target_size == 64
            assert decision.adaptive is False

    def test_stats_report_mode(self):
        assert adaptive.split_policy_stats()["mode"] == "fixed"
        with adaptive.split_policy("auto"):
            assert adaptive.split_policy_stats()["mode"] == "auto"


class TestAutoEndToEnd:
    def test_with_target_size_auto_threads(self):
        expected = [x * 3 for x in range(4096)]
        with ForkJoinPool(parallelism=2, name="adaptive-test") as pool:
            for _ in range(3):
                result = (
                    Stream.range(0, 4096)
                    .parallel()
                    .with_pool(pool)
                    .with_target_size("auto")
                    .map(_work)
                    .to_list()
                )
                assert result == expected
        stats = adaptive.split_policy_stats()
        assert stats["decisions"] == 3
        assert stats["bootstrap"] == 1  # only the first run lacked a cost
        assert stats["observed_runs"] == 3
        assert stats["memo_size"] == 1

    def test_global_auto_mode_engages(self):
        with ForkJoinPool(parallelism=2, name="adaptive-test") as pool:
            with adaptive.split_policy("auto"):
                total = (
                    Stream.range(0, 1 << 12)
                    .parallel()
                    .with_pool(pool)
                    .map(_work)
                    .reduce(0, lambda a, b: a + b)
                )
        assert total == sum(x * 3 for x in range(1 << 12))
        assert adaptive.split_policy_stats()["decisions"] == 1

    def test_with_target_size_validation(self):
        stream = Stream.range(0, 16)
        with pytest.raises(IllegalArgumentError):
            stream.with_target_size("adaptive")
        with pytest.raises(IllegalArgumentError):
            stream.with_target_size(0)
        assert stream.with_target_size("auto")._target_size == "auto"

    def test_short_circuit_runs_do_not_feed_memo(self):
        with ForkJoinPool(parallelism=2, name="adaptive-test") as pool:
            assert (
                Stream.range(0, 4096)
                .parallel()
                .with_pool(pool)
                .with_target_size("auto")
                .any_match(lambda x: x == 7)
            )
        # The match triggered → leaves aborted mid-scan → no observation.
        assert adaptive.split_policy_stats()["observed_runs"] == 0


class TestExplainConsistency:
    def _stream(self, pool):
        return (
            Stream.range(0, 4096)
            .parallel()
            .with_pool(pool)
            .with_target_size("auto")
            .map(_work)
        )

    def test_plan_reports_auto_source_and_inputs(self):
        with ForkJoinPool(parallelism=4, name="adaptive-explain") as pool:
            plan = self._stream(pool).explain().to_dict()
        ex = plan["execution"]
        assert ex["threshold_source"] == "auto"
        assert ex["threshold_inputs"]["basis"] == "bootstrap (no observed cost)"
        assert "threshold inputs:" in ExplainText.render(plan)

    def test_explain_does_not_record_decisions(self):
        with ForkJoinPool(parallelism=4, name="adaptive-explain") as pool:
            self._stream(pool).explain()
            self._stream(pool).explain()
        assert adaptive.split_policy_stats()["decisions"] == 0

    def test_split_tree_matches_traced_leaves_after_warmup(self):
        """The acceptance pin: plan and execution share the decision.

        After a warm-up run seeds the memo, the auto threshold is
        cost-derived — a quantity explain() could never guess from the
        op chain alone.  The plan's split tree must still equal the
        traced leaf count, because both call decide_threshold with the
        same shape key against the same memo.
        """
        with ForkJoinPool(parallelism=4, name="adaptive-explain") as pool:
            self._stream(pool).to_list()  # seed the memo
            plan = self._stream(pool).explain().to_dict()
            with tracing() as tracer:
                result = self._stream(pool).to_list()
        assert result == [x * 3 for x in range(4096)]
        leaf_spans = [s for s in tracer.spans() if s.kind == "leaf"]
        predicted = plan["execution"]["split_tree"]["leaves"]
        assert predicted == len(leaf_spans)
        assert plan["execution"]["threshold_source"] == "auto"


class ExplainText:
    """Tiny helper: render a plan dict the way ExplainPlan.render does."""

    @staticmethod
    def render(plan: dict) -> str:
        from repro.streams.explain import ExplainPlan

        return ExplainPlan(plan).render()


class TestDispatchCostSpan:
    """The leaf-span target derived online from measured dispatch cost."""

    def test_static_target_until_first_sample(self):
        policy = SplitPolicy(pin_leaf_span=False)
        assert policy.leaf_span_target("threads") == policy.target_leaf_span_ns
        assert policy.leaf_span_target(None) == policy.target_leaf_span_ns

    def test_span_is_factor_times_measured_cost(self):
        policy = SplitPolicy(pin_leaf_span=False)
        policy.note_dispatch_cost("threads", 100_000)
        assert policy.leaf_span_target("threads") == (
            100_000 * adaptive.DISPATCH_SPAN_FACTOR
        )
        # Another backend stays on the static default.
        assert policy.leaf_span_target("process") == policy.target_leaf_span_ns

    def test_span_clamps(self):
        policy = SplitPolicy(pin_leaf_span=False)
        policy.note_dispatch_cost("threads", 1)  # absurdly cheap
        assert policy.leaf_span_target("threads") == adaptive._MIN_LEAF_SPAN_NS
        policy.note_dispatch_cost("process", 10_000_000_000)  # absurdly slow
        assert policy.leaf_span_target("process") == adaptive._MAX_LEAF_SPAN_NS

    def test_samples_blend_as_ewma(self):
        policy = SplitPolicy(pin_leaf_span=False)
        policy.note_dispatch_cost("threads", 100_000)
        policy.note_dispatch_cost("threads", 300_000)
        assert policy.stats()["dispatch_cost_ns"]["threads"] == 200_000.0

    def test_nonpositive_samples_ignored(self):
        policy = SplitPolicy(pin_leaf_span=False)
        policy.note_dispatch_cost("threads", 0)
        policy.note_dispatch_cost("threads", -5)
        assert policy.stats()["dispatch_cost_ns"] == {}

    def test_pinned_span_ignores_measurements(self):
        policy = SplitPolicy(pin_leaf_span=True)
        policy.note_dispatch_cost("threads", 100_000)
        assert policy.leaf_span_target("threads") == policy.target_leaf_span_ns

    def test_reset_clears_dispatch_state(self):
        policy = SplitPolicy(pin_leaf_span=False)
        policy.note_dispatch_cost("threads", 100_000)
        policy.reset()
        assert policy.stats()["dispatch_cost_ns"] == {}
        assert policy.leaf_span_target("threads") == policy.target_leaf_span_ns

    def test_decide_uses_derived_span(self):
        policy = SplitPolicy(pin_leaf_span=False)
        key = ("threads", "ListSpliterator", 4, ())
        # 1000ns/element shape: static 32ms span → target 32_000.
        _observe(
            policy, key,
            leaf_ns=[40_000_000] * 4, leaf_elements=[40_000] * 4,
        )
        # size 65536 → Java floor 4096, below both cost-derived targets.
        static = policy.decide(1 << 16, 4, key, record=False)
        assert static.target_size == 32_000  # 32ms span ÷ 1000ns/element
        policy.note_dispatch_cost("threads", 100_000)  # → 6.4ms span
        derived = policy.decide(1 << 16, 4, key, record=False)
        assert derived.inputs["target_leaf_span_ns"] == 6_400_000
        assert derived.target_size == 6_400

    def test_measure_pool_dispatch_guards(self):
        assert adaptive._measure_pool_dispatch(None) == 0.0
        pool = ForkJoinPool(parallelism=2, name="probe-guard")
        pool.shutdown()
        assert adaptive._measure_pool_dispatch(pool) == 0.0

    def test_threads_auto_run_populates_dispatch_cost(self):
        adaptive.set_split_policy("auto")
        with ForkJoinPool(parallelism=2, name="dispatch-e2e") as pool:
            result = (
                Stream.of_iterable(range(20_000))
                .parallel()
                .with_pool(pool)
                .map(_work)
                .sum()
            )
        assert result == sum(x * 3 for x in range(20_000))
        costs = adaptive.split_policy_stats()["dispatch_cost_ns"]
        assert costs.get("threads", 0) > 0
