"""Tests for predicate collectors and JPLF PList functions."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core.predicates import all_equal, count_if, is_sorted
from repro.forkjoin import ForkJoinPool
from repro.jplf.plist_function import (
    PListForkJoinExecutor,
    PListMap,
    PListReduce,
    smallest_prime_factor,
)
from repro.powerlist.plist import PList


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="pred-test")
    yield p
    p.shutdown()


def pow2_lists(max_log=6):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-50, 50), min_size=2**k, max_size=2**k)
    )


class TestIsSorted:
    @given(pow2_lists())
    def test_matches_python(self, xs):
        assert is_sorted(xs, parallel=False) == (xs == sorted(xs))

    @pytest.mark.parametrize("target", [1, 4, 16])
    def test_any_leaf_size(self, target, pool):
        data = sorted([(i * 37) % 101 for i in range(64)])
        assert is_sorted(data, pool=pool, target_size=target)
        data[10], data[50] = data[50], data[10]
        if data != sorted(data):
            assert not is_sorted(data, pool=pool, target_size=target)

    def test_boundary_violation_detected(self, pool):
        # Sorted halves, unsorted junction: only the combiner can see it.
        data = list(range(32)) + list(range(32))
        assert not is_sorted(data, pool=pool, target_size=8)

    def test_singleton(self):
        assert is_sorted([5], parallel=False)


class TestCountIf:
    @given(pow2_lists())
    def test_matches_builtin(self, xs):
        assert count_if(xs, lambda x: x > 0, parallel=False) == sum(
            1 for x in xs if x > 0
        )

    def test_parallel(self, pool):
        data = list(range(256))
        assert count_if(data, lambda x: x % 3 == 0, pool=pool) == 86


class TestAllEqual:
    @given(pow2_lists())
    def test_matches_set_size(self, xs):
        assert all_equal(xs, parallel=False) == (len(set(xs)) <= 1)

    def test_parallel(self, pool):
        assert all_equal([7] * 128, pool=pool)
        assert not all_equal([7] * 127 + [8], pool=pool)


class TestSmallestPrimeFactor:
    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 3), (4, 2), (9, 3), (15, 3), (49, 7), (97, 97)])
    def test_examples(self, n, expected):
        assert smallest_prime_factor(n) == expected

    def test_rejects_small(self):
        with pytest.raises(IllegalArgumentError):
            smallest_prime_factor(1)

    @given(st.integers(2, 10_000))
    def test_is_a_prime_divisor(self, n):
        p = smallest_prime_factor(n)
        assert n % p == 0
        assert smallest_prime_factor(p) == p


class TestPListFunctions:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60))
    def test_map_any_length(self, xs):
        out = PListMap(PList(xs), lambda x: x * 2).compute()
        assert out == [x * 2 for x in xs]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60))
    def test_reduce_any_length(self, xs):
        assert PListReduce(PList(xs), operator.add).compute() == sum(xs)

    def test_reduce_non_commutative(self):
        words = [chr(ord("a") + i % 26) for i in range(30)]
        assert PListReduce(PList(words), operator.add).compute() == "".join(words)

    def test_varying_arity_decomposition(self):
        # length 12 = 2·2·3: the smallest-prime rule gives arity 2, 2, 3.
        fn = PListMap(PList(list(range(12))), lambda x: x)
        assert fn.arity_of(12) == 2
        assert fn.arity_of(3) == 3
        assert fn.compute() == list(range(12))

    def test_custom_arity(self):
        class ThreeWay(PListMap):
            def arity_of(self, length):
                return 3 if length % 3 == 0 else super().arity_of(length)

        out = ThreeWay(PList(list(range(27))), lambda x: -x).compute()
        assert out == [-x for x in range(27)]

    def test_zip_operator(self):
        class ZipMap(PListMap):
            operator = "zip"

            def combine_all(self, results):
                n = len(results)
                m = len(results[0])
                out = [None] * (n * m)
                for k, part in enumerate(results):
                    out[k::n] = part
                return out

        out = ZipMap(PList(list(range(12))), lambda x: x).compute()
        assert out == list(range(12))

    def test_bad_operator(self):
        fn = PListMap(PList([1, 2]), lambda x: x)
        fn.operator = "bogus"
        with pytest.raises(IllegalArgumentError):
            fn.split()


class TestPListForkJoinExecutor:
    @pytest.mark.parametrize("n", [1, 7, 12, 60, 81, 128])
    def test_map_matches_sequential(self, n, pool):
        data = list(range(n))
        fn = PListMap(PList(data), lambda x: x * x)
        out = PListForkJoinExecutor(pool).execute(fn)
        assert out == [x * x for x in data]

    @pytest.mark.parametrize("threshold", [1, 4, 32])
    def test_reduce_thresholds(self, threshold, pool):
        data = list(range(90))
        fn = PListReduce(PList(data), operator.add)
        out = PListForkJoinExecutor(pool, threshold=threshold).execute(fn)
        assert out == sum(data)

    def test_agrees_with_nway_collector(self, pool):
        from repro.core.nway import NWayMapCollector, nway_collect

        data = list(range(81))
        jplf_out = PListForkJoinExecutor(pool).execute(
            PListMap(PList(data), lambda x: x + 1)
        )
        stream_out = nway_collect(
            NWayMapCollector(lambda x: x + 1), data, arity=3, pool=pool
        )
        assert jplf_out == stream_out
