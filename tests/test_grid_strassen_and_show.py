"""Tests for Strassen multiplication, the bitonic collector, the random
steal policy, and the decomposition-tree printer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core.sorting import bitonic_sort_collect
from repro.forkjoin import ForkJoinPool
from repro.powerlist import PowerList
from repro.powerlist.grid import Grid, matmul, strassen
from repro.powerlist.show import decomposition_tree, side_by_side
from repro.simcore import CostModel, SimMachine, build_dc_dag, greedy_bound_check


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="misc")
    yield p
    p.shutdown()


class TestStrassen:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = Grid.from_rows(rng.integers(-9, 9, (n, n)).tolist())
        y = Grid.from_rows(rng.integers(-9, 9, (n, n)).tolist())
        expected = (np.array(x.to_rows()) @ np.array(y.to_rows())).tolist()
        assert strassen(x, y).to_rows() == expected

    def test_agrees_with_naive_dc(self):
        rng = np.random.default_rng(99)
        x = Grid.from_rows(rng.integers(-5, 5, (8, 8)).tolist())
        y = Grid.from_rows(rng.integers(-5, 5, (8, 8)).tolist())
        assert strassen(x, y, threshold=1) == matmul(x, y, threshold=1)

    def test_requires_square(self):
        with pytest.raises(IllegalArgumentError):
            strassen(Grid.filled(1, 2, 4), Grid.filled(1, 4, 2))

    def test_exact_on_integers(self):
        # Strassen adds/subtracts before multiplying; over ints it must
        # stay exact (no float drift).
        x = Grid.from_rows([[10**6, -(10**6)], [3, 4]])
        y = Grid.from_rows([[1, 2], [3, 4]])
        assert strassen(x, y) == matmul(x, y)


class TestBitonicCollector:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_sorts(self, parallel, pool):
        import random

        rng = random.Random(5)
        data = [rng.randint(0, 999) for _ in range(128)]
        assert bitonic_sort_collect(data, parallel=parallel, pool=pool) == sorted(data)

    @pytest.mark.parametrize("target", [1, 4, 16])
    def test_any_leaf_size(self, target, pool):
        data = [(i * 13) % 101 for i in range(64)]
        assert bitonic_sort_collect(data, pool=pool, target_size=target) == sorted(data)

    @given(st.lists(st.integers(-100, 100), min_size=8, max_size=8))
    def test_agrees_with_batcher(self, data):
        from repro.core import batcher_merge_sort

        assert bitonic_sort_collect(data, parallel=False) == batcher_merge_sort(
            data, parallel=False
        )


class TestRandomStealPolicy:
    def test_deterministic_given_seed(self):
        dag = lambda: build_dc_dag(2**12, 2**6, CostModel())
        a = SimMachine(4, steal_policy="random", seed=7).run(dag())
        b = SimMachine(4, steal_policy="random", seed=7).run(dag())
        assert a.makespan == b.makespan
        assert [(t.worker, t.sid) for t in a.trace] == [
            (t.worker, t.sid) for t in b.trace
        ]

    def test_policies_both_respect_bounds(self):
        for policy in ("round_robin", "random"):
            dag = build_dc_dag(2**12, 2**6, CostModel())
            result = SimMachine(8, steal_policy=policy).run(dag)
            assert greedy_bound_check(result).all_ok

    def test_invalid_policy(self):
        with pytest.raises(IllegalArgumentError):
            SimMachine(2, steal_policy="chaotic")

    def test_policies_may_differ_but_agree_on_work(self):
        dag1 = build_dc_dag(2**12, 2**6, CostModel())
        dag2 = build_dc_dag(2**12, 2**6, CostModel())
        rr = SimMachine(8, steal_policy="round_robin").run(dag1)
        rnd = SimMachine(8, steal_policy="random", seed=3).run(dag2)
        assert rr.total_work == rnd.total_work
        executed = lambda r: sorted(t.sid for t in r.trace)
        assert executed(rr) == executed(rnd)


class TestDecompositionTree:
    def test_zip_tree_structure(self):
        art = decomposition_tree(PowerList([0, 1, 2, 3]), "zip", show_elements=False)
        lines = art.splitlines()
        assert lines[0].startswith("zip")
        assert sum("stride=4" in line for line in lines) == 4  # 4 singletons
        assert "├──" in art and "└──" in art

    def test_tie_tree_elements(self):
        art = decomposition_tree(PowerList([7, 8]), "tie")
        assert "⟨7, 8⟩" in art
        assert "⟨7⟩" in art and "⟨8⟩" in art

    def test_depth_limits(self):
        art = decomposition_tree(PowerList(list(range(16))), "tie", depth=1,
                                 show_elements=False)
        assert len(art.splitlines()) == 3  # root + two children only

    def test_long_lists_elided(self):
        art = decomposition_tree(PowerList(list(range(16))), "tie", depth=0)
        assert "…" in art

    def test_invalid_operator(self):
        with pytest.raises(IllegalArgumentError):
            decomposition_tree(PowerList([1, 2]), "bogus")

    def test_side_by_side(self):
        art = side_by_side(PowerList([1, 2, 3, 4]))
        assert art.count("tie [") == 1
        assert art.count("zip [") == 1

    def test_docstring_example(self):
        import doctest

        import repro.powerlist.show as show_mod

        result = doctest.testmod(show_mod, verbose=False)
        assert result.failed == 0
