"""Parallel stream execution must be semantically identical to sequential."""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.forkjoin import ForkJoinPool
from repro.streams import Collectors, Optional, Stream, stream_of


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="stream-test")
    yield p
    p.shutdown()


class TestParallelEqualsSequential:
    def test_map_to_list(self, pool):
        n = 5000
        out = Stream.range(0, n).parallel().with_pool(pool).map(lambda x: x + 1).to_list()
        assert out == list(range(1, n + 1))

    def test_filter_preserves_order(self, pool):
        out = (
            Stream.range(0, 2000)
            .parallel()
            .with_pool(pool)
            .filter(lambda x: x % 7 == 0)
            .to_list()
        )
        assert out == list(range(0, 2000, 7))

    def test_flat_map(self, pool):
        out = (
            stream_of([[i, i] for i in range(500)])
            .parallel()
            .with_pool(pool)
            .flat_map(lambda xs: xs)
            .to_list()
        )
        assert out == [i for i in range(500) for _ in range(2)]

    def test_reduce_with_identity(self, pool):
        assert Stream.range(0, 1000).parallel().with_pool(pool).reduce(
            0, lambda a, b: a + b
        ) == 499500

    def test_reduce_without_identity(self, pool):
        out = Stream.range(1, 100).parallel().with_pool(pool).reduce(lambda a, b: a * b)
        expected = 1
        for i in range(1, 100):
            expected *= i
        assert out.get() == expected

    def test_reduce_empty_parallel(self, pool):
        out = Stream.empty().parallel().with_pool(pool).reduce(lambda a, b: a + b)
        assert out == Optional.empty()

    def test_reduce_three_arg_parallel(self, pool):
        out = (
            stream_of(["a", "bb", "ccc"] * 50)
            .parallel()
            .with_pool(pool)
            .reduce(0, lambda acc, s: acc + len(s), lambda a, b: a + b)
        )
        assert out == 300

    def test_count(self, pool):
        assert Stream.range(0, 12345).parallel().with_pool(pool).count() == 12345

    def test_sum(self, pool):
        assert Stream.range(0, 100).parallel().with_pool(pool).sum() == 4950

    def test_min_max(self, pool):
        data = [(i * 7919) % 1000 for i in range(1000)]
        assert stream_of(data).parallel().with_pool(pool).min().get() == min(data)
        assert stream_of(data).parallel().with_pool(pool).max().get() == max(data)

    def test_collect_raw_triple_uses_combiner(self, pool):
        # Mirrors the paper's StringBuilder example: the comma appears only
        # because the combiner runs (parallel execution).
        words = [f"x{i}" for i in range(256)]

        def combine(a, b):
            a.extend(b)

        out = (
            stream_of(words)
            .parallel()
            .with_pool(pool)
            .collect(lambda: [], lambda acc, w: acc.append(w), combine)
        )
        assert out == words


class TestParallelStatefulBarriers:
    def test_sorted_parallel(self, pool):
        data = [(i * 31) % 97 for i in range(500)]
        out = stream_of(data).parallel().with_pool(pool).sorted().to_list()
        assert out == sorted(data)

    def test_distinct_parallel(self, pool):
        data = [i % 10 for i in range(1000)]
        out = stream_of(data).parallel().with_pool(pool).distinct().to_list()
        assert out == list(range(10))

    def test_limit_skip_parallel(self, pool):
        out = Stream.range(0, 10_000).parallel().with_pool(pool).skip(5).limit(10).to_list()
        assert out == list(range(5, 15))

    def test_sorted_then_map_parallel(self, pool):
        data = [5, 3, 1, 4, 2] * 20
        out = (
            stream_of(data)
            .parallel()
            .with_pool(pool)
            .sorted()
            .map(lambda x: x * 10)
            .to_list()
        )
        assert out == [x * 10 for x in sorted(data)]

    def test_map_then_sorted_then_filter(self, pool):
        data = list(range(100, 0, -1))
        out = (
            stream_of(data)
            .parallel()
            .with_pool(pool)
            .map(lambda x: x % 13)
            .sorted()
            .filter(lambda x: x > 5)
            .to_list()
        )
        assert out == [x for x in sorted(v % 13 for v in data) if x > 5]

    def test_take_drop_while_parallel(self, pool):
        data = [1, 2, 3, 100, 4] * 5
        assert (
            stream_of(data).parallel().with_pool(pool).take_while(lambda x: x < 50).to_list()
            == [1, 2, 3]
        )
        assert (
            stream_of(data).parallel().with_pool(pool).drop_while(lambda x: x < 50).to_list()
            == data[3:]
        )


class TestParallelShortCircuit:
    def test_any_match(self, pool):
        assert Stream.range(0, 100_000).parallel().with_pool(pool).any_match(
            lambda x: x == 99_999
        )
        assert not Stream.range(0, 1000).parallel().with_pool(pool).any_match(
            lambda x: x < 0
        )

    def test_all_match(self, pool):
        assert Stream.range(0, 10_000).parallel().with_pool(pool).all_match(
            lambda x: x >= 0
        )
        assert not Stream.range(0, 10_000).parallel().with_pool(pool).all_match(
            lambda x: x != 5000
        )

    def test_none_match(self, pool):
        assert Stream.range(0, 10_000).parallel().with_pool(pool).none_match(
            lambda x: x < 0
        )

    def test_find_first_respects_order(self, pool):
        out = (
            Stream.range(0, 100_000)
            .parallel()
            .with_pool(pool)
            .filter(lambda x: x % 997 == 17)
            .find_first()
        )
        assert out.get() == 17  # smallest solution of x % 997 == 17

    def test_find_any_finds_something_valid(self, pool):
        out = (
            Stream.range(0, 10_000)
            .parallel()
            .with_pool(pool)
            .filter(lambda x: x % 100 == 3)
            .find_any()
        )
        assert out.get() % 100 == 3

    def test_find_on_empty(self, pool):
        assert Stream.empty().parallel().with_pool(pool).find_first().is_empty()


class TestParallelForEach:
    def test_visits_every_element_once(self, pool):
        seen = []
        lock = threading.Lock()

        def record(x):
            with lock:
                seen.append(x)

        Stream.range(0, 3000).parallel().with_pool(pool).for_each(record)
        assert sorted(seen) == list(range(3000))

    def test_for_each_ordered(self, pool):
        seen = []
        Stream.range(0, 500).parallel().with_pool(pool).for_each_ordered(seen.append)
        assert seen == list(range(500))


class TestTargetSize:
    def test_explicit_target_size(self, pool):
        out = (
            Stream.range(0, 1024)
            .parallel()
            .with_pool(pool)
            .with_target_size(64)
            .map(lambda x: x)
            .to_list()
        )
        assert out == list(range(1024))

    def test_target_size_one_full_decomposition(self, pool):
        out = (
            Stream.range(0, 64)
            .parallel()
            .with_pool(pool)
            .with_target_size(1)
            .to_list()
        )
        assert out == list(range(64))

    def test_invalid_target_size(self):
        import pytest as _pytest
        from repro.common import IllegalArgumentError

        with _pytest.raises(IllegalArgumentError):
            Stream.range(0, 4).with_target_size(0)


class TestParallelProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_pipeline_equivalence(self, xs):
        pipeline = lambda s: (
            s.map(lambda x: x * 2).filter(lambda x: x % 3 != 0).to_list()
        )
        assert pipeline(stream_of(xs).parallel()) == pipeline(stream_of(xs))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_reduce_equivalence(self, xs):
        seq = stream_of(xs).reduce(lambda a, b: a + b).get()
        par = stream_of(xs).parallel().reduce(lambda a, b: a + b).get()
        assert par == seq

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(0, 30), max_size=120))
    def test_stateful_chain_equivalence(self, xs):
        pipeline = lambda s: s.distinct().sorted().limit(10).to_list()
        assert pipeline(stream_of(xs).parallel()) == pipeline(stream_of(xs))
