"""Direct unit tests for helpers only exercised indirectly elsewhere."""

import threading

import pytest

from repro.common import IllegalArgumentError, IllegalStateError
from repro.forkjoin import ForkJoinPool, RecursiveTask
from repro.forkjoin.pool import current_worker
from repro.powerlist import PowerList
from repro.powerlist.operators import elementwise
from repro.simcore import CostModel, SimMachine
from repro.simcore.dag import build_nway_dag
from repro.streams.parallel import compute_target_size
from repro.streams.spliterator import UNKNOWN_SIZE


class TestCurrentWorker:
    def test_none_outside_pool(self):
        assert current_worker() is None

    def test_set_inside_pool(self):
        seen = []

        class Probe(RecursiveTask):
            def compute(self):
                worker = current_worker()
                seen.append((worker is not None, worker.pool if worker else None))
                return None

        with ForkJoinPool(parallelism=2, name="probe") as pool:
            pool.invoke(Probe())
            assert seen == [(True, pool)]

    def test_common_pool_parallelism_lock(self):
        from repro.forkjoin import common_pool, set_common_pool_parallelism

        common_pool()  # ensure created
        with pytest.raises(IllegalStateError):
            set_common_pool_parallelism(2)

    def test_common_pool_reconfigurable_after_shutdown(self):
        from repro.forkjoin import (
            common_pool,
            set_common_pool_parallelism,
            shutdown_common_pool,
        )

        first = common_pool()
        retired = shutdown_common_pool()
        assert retired is first
        assert retired.is_terminated()
        # With the singleton retired, reconfiguration is legal again and
        # the next common_pool() call builds a fresh pool at the new width.
        set_common_pool_parallelism(2)
        fresh = common_pool()
        try:
            assert fresh is not first
            assert fresh.parallelism == 2

            class Sum(RecursiveTask):
                def compute(self):
                    return 21 + 21

            assert fresh.invoke(Sum()) == 42
        finally:
            # Retire the narrow pool and restore the default width so later
            # tests see a pristine common-pool configuration.
            shutdown_common_pool()
            import repro.forkjoin.pool as fjp

            with fjp._common_lock:
                fjp._common_parallelism = None

    def test_shutdown_common_pool_without_pool_is_noop(self):
        from repro.forkjoin import shutdown_common_pool

        shutdown_common_pool()  # retire whatever earlier tests created
        assert shutdown_common_pool() is None


class TestComputeTargetSize:
    def test_java_rule(self):
        assert compute_target_size(1024, 8) == 1024 // 32

    def test_minimum_one(self):
        assert compute_target_size(3, 8) == 1

    def test_unknown_size_scales_with_parallelism(self):
        # The unsized default is divided across workers, not a constant:
        # eight workers must not all get the single-worker leaf size.
        assert compute_target_size(UNKNOWN_SIZE, 8) == (1 << 12) // 8
        assert compute_target_size(UNKNOWN_SIZE, 1) == 1 << 12
        assert compute_target_size(UNKNOWN_SIZE, 1 << 14) == 1


class TestBuildNwayDag:
    def test_three_way_shape(self):
        dag = build_nway_dag(27, 1, CostModel(), arity=3)
        kinds = [s.kind for s in dag.strands]
        assert kinds.count("leaf") == 27
        assert kinds.count("split") == 13  # 1 + 3 + 9
        assert kinds.count("combine") == 13
        dag.validate()

    def test_indivisible_becomes_leaf(self):
        dag = build_nway_dag(10, 1, CostModel(), arity=3)
        assert dag.leaf_count() == 1

    def test_schedulable(self):
        dag = build_nway_dag(81, 3, CostModel(), arity=3)
        result = SimMachine(8).run(dag)
        assert sorted(t.sid for t in result.trace) == list(range(len(dag.strands)))

    def test_higher_arity_shallower(self):
        deep = build_nway_dag(64, 1, CostModel(), arity=2)
        shallow = build_nway_dag(64, 1, CostModel(), arity=8)
        assert shallow.critical_path() < deep.critical_path()

    def test_zip_strides_charged(self):
        m = CostModel(stride_penalty=0.3)
        tie = build_nway_dag(81, 3, m, arity=3, operator="tie")
        zipped = build_nway_dag(81, 3, m, arity=3, operator="zip")
        assert zipped.total_work() > tie.total_work()

    @pytest.mark.parametrize("bad", [(0, 1, 2), (4, 0, 2), (4, 1, 1)])
    def test_validation(self, bad):
        n, t, arity = bad
        with pytest.raises(IllegalArgumentError):
            build_nway_dag(n, t, CostModel(), arity=arity)

    def test_unknown_operator(self):
        with pytest.raises(IllegalArgumentError):
            build_nway_dag(4, 1, CostModel(), arity=2, operator="bogus")


class TestElementwise:
    def test_custom_operator(self):
        out = elementwise(lambda a, b: f"{a}{b}", PowerList(["x", "y"]),
                          PowerList(["1", "2"]))
        assert out.to_list() == ["x1", "y2"]

    def test_similarity_required(self):
        from repro.common import NotSimilarError

        with pytest.raises(NotSimilarError):
            elementwise(lambda a, b: a, PowerList([1]), PowerList([1, 2]))


class TestGridSub:
    def test_subtracts(self):
        from repro.powerlist.grid import Grid, grid_sub

        x = Grid.from_rows([[5, 6], [7, 8]])
        y = Grid.from_rows([[1, 2], [3, 4]])
        assert grid_sub(x, y).to_rows() == [[4, 4], [4, 4]]

    def test_similarity(self):
        from repro.powerlist.grid import Grid, grid_sub

        with pytest.raises(IllegalArgumentError):
            grid_sub(Grid.filled(1, 2, 2), Grid.filled(1, 4, 4))


class TestDescendSpliteratorDirect:
    def test_transforms_on_split(self):
        from repro.core.extended_ops import (
            DescendTieSpliterator,
            DescendTransformCollector,
        )

        collector = DescendTransformCollector(
            op_plus=lambda a, b: a + b, op_times=lambda a, b: a - b
        )
        s = DescendTieSpliterator([1.0, 2.0, 3.0, 4.0], 0, 4, 1, collector)
        prefix = s.try_split()
        left, right = [], []
        # Elements must already be the (p⊕q) and (p⊗q) halves — but note
        # the leaf basic_case applies the remaining recursion too.
        collector.basic_case = None  # observe raw storage
        prefix.for_each_remaining(left.append)
        s.for_each_remaining(right.append)
        assert left == [1 + 3, 2 + 4]
        assert right == [1 - 3, 2 - 4]

    def test_singleton_refuses(self):
        from repro.core.extended_ops import (
            DescendTieSpliterator,
            DescendTransformCollector,
        )

        collector = DescendTransformCollector(lambda a, b: a, lambda a, b: b)
        s = DescendTieSpliterator([1.0], 0, 1, 1, collector)
        assert s.try_split() is None
