"""Unit tests for the fault-injection framework (``repro.faults``).

Site-pattern matching, deterministic strike decisions, plan lifecycle,
resilience policies (retry/backoff, deadlines, graceful degradation) and
the engine hooks they drive.
"""

import time

import pytest

from repro.common import IllegalArgumentError, TaskTimeoutError
from repro.core import polynomial_value
from repro.core.polynomial import PolynomialValue, horner
from repro.core.power_collector import power_collect
from repro.faults import (
    Deadline,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    SitePattern,
    WorkerKilledError,
    current_fault_plan,
    fault_injection,
    run_resilient,
    set_fault_plan,
    site_string,
)
from repro.faults.plan import _decides_to_fire
from repro.forkjoin import ForkJoinPool
from repro.streams import Stream


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="faults")
    yield p
    p.shutdown()


COEFFS = [float((i * 37) % 19 - 9) for i in range(256)]
EXPECTED = horner(COEFFS, -1.0)  # x=-1: float-exact, position-sensitive


class TestSitePattern:
    @pytest.mark.parametrize(
        ("pattern", "kind", "qualifiers", "attrs", "expected"),
        [
            ("leaf", "leaf", (), {}, True),
            ("leaf", "combine", (), {}, False),
            ("leaf:*", "leaf", (), {}, True),  # * tolerates no qualifiers
            ("leaf:*", "leaf", ("a",), {}, True),
            ("*", "combine", (), {"depth": 2}, True),
            ("combine:depth<3", "combine", (), {"depth": 2}, True),
            ("combine:depth<3", "combine", (), {"depth": 3}, False),
            ("combine:depth<3", "combine", (), {}, False),  # missing attr
            ("leaf:size>=64", "leaf", (), {"size": 64}, True),
            ("leaf:size>=64", "leaf", (), {"size": 63}, False),
            ("worker:depth!=0", "worker", (), {"depth": 1}, True),
            ("worker:index=2", "worker", ("2",), {"index": 2}, True),
            ("worker:index=2", "worker", ("1",), {"index": 1}, False),
            ("proc:worker-2", "proc", ("worker-2",), {}, True),
            ("proc:worker-2", "proc", ("worker-1",), {}, False),
            ("proc:worker-2", "proc", (), {}, False),  # concrete needs qual
            ("proc:worker-*", "proc", ("worker-7",), {}, True),
            ("mpi:send:0->1", "mpi", ("send", "0->1"), {}, True),
            ("mpi:send:0->1", "mpi", ("send", "1->0"), {}, False),
            ("mpi:send", "mpi", ("send", "1->0"), {}, True),  # prefix match
            ("mpi", "mpi", ("send", "1->0"), {}, True),
            ("*:depth=0", "leaf", (), {"depth": 0}, True),
            ("*:depth=0", "combine", (), {"depth": 0}, True),
        ],
    )
    def test_matrix(self, pattern, kind, qualifiers, attrs, expected):
        assert SitePattern(pattern).matches(kind, qualifiers, attrs) is expected

    def test_empty_pattern_rejected(self):
        with pytest.raises(IllegalArgumentError):
            SitePattern("  ")

    def test_site_string(self):
        assert site_string("mpi", ("send", "0->1")) == "mpi:send:0->1"
        assert site_string("leaf") == "leaf"


class TestDeterminism:
    def test_decision_is_pure(self):
        for occ in range(50):
            a = _decides_to_fire(11, 0, occ, 0.3)
            b = _decides_to_fire(11, 0, occ, 0.3)
            assert a == b

    def test_decision_varies_with_seed(self):
        rows = [
            tuple(_decides_to_fire(seed, 0, occ, 0.5) for occ in range(64))
            for seed in range(4)
        ]
        assert len(set(rows)) > 1

    def test_probability_extremes(self):
        assert _decides_to_fire(1, 0, 0, 1.0)
        assert not _decides_to_fire(1, 0, 0, 0.0)

    def test_same_seed_same_strikes(self):
        def strikes(seed):
            plan = FaultPlan(seed=seed).inject("leaf:*", "raise", probability=0.3)
            for _ in range(100):
                plan.fire("leaf", allowed=("raise",))
            return plan.stats()["injected"]

        assert strikes(5) == strikes(5)

    def test_times_caps_strikes(self):
        plan = FaultPlan().inject("leaf", "raise", times=3)
        fired = sum(
            plan.fire("leaf", allowed=("raise",)) is not None for _ in range(10)
        )
        assert fired == 3
        assert plan.stats()["injected"] == 3
        assert plan.stats()["matched"] == 10


class TestFaultPlan:
    def test_no_plan_by_default(self):
        assert current_fault_plan() is None

    def test_context_manager_installs_and_restores(self):
        plan = FaultPlan()
        with fault_injection(plan):
            assert current_fault_plan() is plan
        assert current_fault_plan() is None

    def test_set_fault_plan_roundtrip(self):
        plan = FaultPlan()
        try:
            set_fault_plan(plan)
            assert current_fault_plan() is plan
        finally:
            set_fault_plan(None)
        assert current_fault_plan() is None

    def test_allowed_filters_modes(self):
        plan = FaultPlan().inject("leaf", "kill")
        assert plan.fire("leaf", allowed=("raise", "delay")) is None
        assert plan.fire("leaf", allowed=("kill",)) is not None

    def test_first_matching_injector_wins(self):
        plan = (
            FaultPlan()
            .inject("leaf", "delay", delay=0.5)
            .inject("leaf", "raise")
        )
        action = plan.fire("leaf", allowed=("delay", "raise"))
        assert action.mode == "delay"

    def test_custom_exception_class_and_instance(self):
        plan = FaultPlan().inject("leaf", "raise", exc=KeyError)
        assert isinstance(plan.fire("leaf").make_exception(), KeyError)
        boom = ValueError("boom")
        plan2 = FaultPlan().inject("leaf", "raise", exc=boom)
        assert plan2.fire("leaf").make_exception() is boom

    def test_kill_defaults_to_worker_killed_error(self):
        plan = FaultPlan().inject("worker:*", "kill")
        exc = plan.fire("worker", ("0",)).make_exception()
        assert isinstance(exc, WorkerKilledError)
        assert isinstance(exc, FaultInjected)

    def test_corrupt_requires_mutate(self):
        with pytest.raises(IllegalArgumentError):
            FaultPlan().inject("leaf", "corrupt")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IllegalArgumentError):
            FaultPlan().inject("leaf", "explode")
        with pytest.raises(IllegalArgumentError):
            FaultPlan().inject("leaf", "raise", probability=1.5)
        with pytest.raises(IllegalArgumentError):
            FaultPlan().inject("leaf", "raise", times=0)
        with pytest.raises(IllegalArgumentError):
            FaultPlan().inject("leaf", "delay", delay=-1)

    def test_reset_counts_replays(self):
        plan = FaultPlan().inject("leaf", "raise", times=1)
        assert plan.fire("leaf") is not None
        assert plan.fire("leaf") is None
        plan.reset_counts()
        assert plan.fire("leaf") is not None

    def test_stats_by_site(self):
        plan = FaultPlan().inject("mpi:send", "lose")
        plan.fire("mpi", ("send", "0->1"))
        plan.fire("mpi", ("send", "0->1"))
        assert plan.stats()["by_site"]["mpi:send:0->1"] == 2


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        rp = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.35)
        assert rp.delay_for(1) == pytest.approx(0.1)
        assert rp.delay_for(2) == pytest.approx(0.2)
        assert rp.delay_for(3) == pytest.approx(0.35)  # capped

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(base_delay=0.1, jitter=0.5, seed=9)
        b = RetryPolicy(base_delay=0.1, jitter=0.5, seed=9)
        assert [a.delay_for(i) for i in (1, 2, 3)] == [
            b.delay_for(i) for i in (1, 2, 3)
        ]
        c = RetryPolicy(base_delay=0.1, jitter=0.5, seed=10)
        assert [a.delay_for(i) for i in (1, 2, 3)] != [
            c.delay_for(i) for i in (1, 2, 3)
        ]

    def test_retryable_filter(self):
        rp = RetryPolicy(retry_on=(KeyError,))
        assert rp.retryable(KeyError("k"))
        assert not rp.retryable(ValueError("v"))

    def test_timeout_never_retryable(self):
        rp = RetryPolicy(retry_on=(Exception,))
        assert not rp.retryable(TaskTimeoutError("late"))

    def test_validation(self):
        with pytest.raises(IllegalArgumentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(IllegalArgumentError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(IllegalArgumentError):
            RetryPolicy(base_delay=-1)


class TestDeadline:
    def test_remaining_counts_down(self):
        d = Deadline.after(10.0)
        assert 9.0 < d.remaining() <= 10.0
        assert not d.expired

    def test_expired_after_budget(self):
        d = Deadline.after(0.01)
        time.sleep(0.03)
        assert d.expired
        assert d.remaining() == 0.0
        with pytest.raises(TaskTimeoutError):
            d.check("unit test")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(IllegalArgumentError):
            Deadline.after(0.0)


class TestRunResilient:
    def test_success_passthrough(self):
        assert run_resilient(lambda: 42) == 42

    def test_retry_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultInjected("flake")
            return "ok"

        out = run_resilient(flaky, retry=RetryPolicy(max_attempts=3))
        assert out == "ok"
        assert len(attempts) == 3

    def test_exhausted_retries_reraise(self):
        with pytest.raises(FaultInjected):
            run_resilient(
                lambda: (_ for _ in ()).throw(FaultInjected("always")),
                retry=RetryPolicy(max_attempts=2),
            )

    def test_exhausted_retries_fall_back(self):
        degraded = []
        out = run_resilient(
            lambda: (_ for _ in ()).throw(FaultInjected("always")),
            retry=RetryPolicy(max_attempts=2),
            fallback=lambda: "sequential",
            on_degrade=lambda exc: degraded.append(exc),
        )
        assert out == "sequential"
        assert isinstance(degraded[0], FaultInjected)

    def test_non_retryable_skips_to_fallback(self):
        attempts = []

        def fail():
            attempts.append(1)
            raise ValueError("permanent")

        out = run_resilient(
            fail,
            retry=RetryPolicy(max_attempts=5, retry_on=(KeyError,)),
            fallback=lambda: "plan-b",
        )
        assert out == "plan-b"
        assert len(attempts) == 1  # no pointless re-attempts

    def test_timeout_skips_retries(self):
        attempts = []

        def too_slow():
            attempts.append(1)
            raise TaskTimeoutError("overran")

        with pytest.raises(TaskTimeoutError):
            run_resilient(too_slow, retry=RetryPolicy(max_attempts=5))
        assert len(attempts) == 1

    def test_expired_deadline_blocks_attempt(self):
        d = Deadline.after(0.01)
        time.sleep(0.03)
        ran = []
        out = run_resilient(
            lambda: ran.append(1), deadline=d, fallback=lambda: "late-plan-b"
        )
        assert out == "late-plan-b"
        assert ran == []

    def test_keyboard_interrupt_never_degrades(self):
        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_resilient(interrupted, fallback=lambda: "nope")

    def test_on_retry_callback(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise FaultInjected("f")
            return 1

        run_resilient(
            flaky,
            retry=RetryPolicy(max_attempts=3),
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]


class TestStreamInjection:
    def test_leaf_raise_fails_parallel_collect(self, pool):
        plan = FaultPlan(seed=1).inject("leaf:*", "raise", times=1)
        with fault_injection(plan):
            with pytest.raises(FaultInjected):
                polynomial_value(COEFFS, -1.0, pool=pool)
        assert plan.stats()["injected"] == 1

    def test_combine_depth_constraint(self, pool):
        plan = FaultPlan(seed=2).inject("combine:depth<1", "raise", times=1)
        with fault_injection(plan):
            with pytest.raises(FaultInjected):
                polynomial_value(COEFFS, -1.0, pool=pool)
        by_site = plan.stats()["by_site"]
        assert by_site.get("combine") == 1

    def test_corrupt_leaf_changes_result(self, pool):
        plan = FaultPlan(seed=3).inject(
            "leaf:*", "corrupt", times=1, mutate=lambda c: c
        )
        # Identity mutate: result must still be correct; the hook ran.
        with fault_injection(plan):
            out = polynomial_value(COEFFS, -1.0, pool=pool)
        assert out == EXPECTED
        assert plan.stats()["injected"] == 1

    def test_sequential_collect_immune_to_leaf_injectors(self, pool):
        plan = FaultPlan(seed=4).inject("leaf:*", "raise")
        with fault_injection(plan):
            out = polynomial_value(COEFFS, -1.0, parallel=False, pool=pool)
        assert out == EXPECTED
        assert plan.stats()["injected"] == 0

    def test_retry_recovers_exact_value(self, pool):
        plan = FaultPlan(seed=5).inject("leaf:*", "raise", times=2)
        with fault_injection(plan):
            out = polynomial_value(
                COEFFS, -1.0, pool=pool, retry=RetryPolicy(max_attempts=4)
            )
        assert out == EXPECTED
        assert plan.stats()["injected"] == 2

    def test_fallback_recovers_under_unbounded_faults(self, pool):
        plan = FaultPlan(seed=6).inject("leaf:*", "raise")  # every leaf, always
        with fault_injection(plan):
            out = polynomial_value(
                COEFFS, -1.0, pool=pool,
                retry=RetryPolicy(max_attempts=2), fallback=True,
            )
        assert out == EXPECTED  # sequential fallback bypasses leaf sites

    def test_reset_clears_descending_phase_state(self, pool):
        pv = PolynomialValue(-1.0)
        plan = FaultPlan(seed=7).inject("combine:*", "raise", times=1)
        with fault_injection(plan):
            out = power_collect(
                pv, COEFFS, pool=pool,
                retry=RetryPolicy(max_attempts=3), fallback=True,
            )
        assert out == EXPECTED

    def test_worker_kill_is_contained_and_respawned(self):
        plan = FaultPlan(seed=8).inject("worker:*", "kill", times=1)
        with ForkJoinPool(parallelism=2, name="killable") as p:
            with fault_injection(plan):
                out = (
                    Stream.range(0, 10_000)
                    .parallel()
                    .with_pool(p)
                    .map(lambda x: x + 1)
                    .sum()
                )
            assert out == sum(range(1, 10_001))
            stats = p.stats()
        assert plan.stats()["injected"] == 1
        assert stats["worker_crashes"] >= 1

    def test_injection_disabled_is_free_of_side_effects(self, pool):
        assert current_fault_plan() is None
        assert polynomial_value(COEFFS, -1.0, pool=pool) == EXPECTED


class TestDeadlinePropagation:
    def test_with_deadline_seconds_coerced(self, pool):
        out = (
            Stream.range(0, 1000)
            .parallel()
            .with_pool(pool)
            .with_deadline(30.0)
            .sum()
        )
        assert out == 499500

    def test_expired_deadline_raises_before_work(self, pool):
        d = Deadline.after(0.01)
        time.sleep(0.03)
        with pytest.raises(TaskTimeoutError):
            Stream.range(0, 1000).parallel().with_pool(pool).with_deadline(d).sum()

    def test_deadline_bounds_slow_terminal(self):
        def slow(x):
            time.sleep(0.05)
            return x

        with ForkJoinPool(parallelism=2, name="deadline") as p:
            with pytest.raises(TaskTimeoutError):
                (
                    Stream.range(0, 64)
                    .parallel()
                    .with_pool(p)
                    .with_target_size(1)
                    .with_deadline(0.1)
                    .map(slow)
                    .to_list()
                )

    def test_deadline_survives_derivation(self, pool):
        d = Deadline.after(30.0)
        s = Stream.range(0, 100).parallel().with_pool(pool).with_deadline(d)
        assert s.map(lambda x: x * 2).filter(lambda x: x % 4 == 0).count() == 50

    def test_power_collect_deadline(self, pool):
        d = Deadline.after(0.01)
        time.sleep(0.03)
        with pytest.raises(TaskTimeoutError):
            power_collect(PolynomialValue(-1.0), COEFFS, pool=pool, deadline=d)

    def test_power_collect_deadline_with_fallback_degrades(self, pool):
        d = Deadline.after(0.01)
        time.sleep(0.03)
        out = power_collect(
            PolynomialValue(-1.0), COEFFS, pool=pool, deadline=d, fallback=True
        )
        assert out == EXPECTED
