"""Fusion laws of the PowerList collector algebra.

The equational reasoning the theory enables — map fusion, map/reduce
promotion (the homomorphism lemmas), scan/reduce relationships — checked
over random inputs through the *actual collectors*, not just the specs.
"""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HomomorphismCollector,
    PowerMapCollector,
    PowerReduceCollector,
    power_collect,
    prefix_sum,
)


def pow2_lists(max_log=5):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-30, 30), min_size=2**k, max_size=2**k)
    )


def run(collector, data):
    return power_collect(collector, data, parallel=False)


class TestMapLaws:
    @given(pow2_lists())
    def test_map_fusion(self, xs):
        # map f ∘ map g == map (f ∘ g)
        f = lambda x: x * 3
        g = lambda x: x - 7
        chained = run(PowerMapCollector(f, "tie"), run(PowerMapCollector(g, "tie"), xs))
        fused = run(PowerMapCollector(lambda x: f(g(x)), "tie"), xs)
        assert chained == fused

    @given(pow2_lists())
    def test_map_identity(self, xs):
        assert run(PowerMapCollector(lambda x: x, "tie"), xs) == xs

    @given(pow2_lists(max_log=4))
    def test_map_operator_independence(self, xs):
        f = lambda x: x * x
        assert run(PowerMapCollector(f, "tie"), xs) == run(
            PowerMapCollector(f, "zip"), xs
        )


class TestPromotionLaws:
    @given(pow2_lists())
    def test_reduce_map_promotion(self, xs):
        # reduce(op) ∘ map(f) == homomorphism(f, op)
        f = lambda x: x + 5
        composed = run(
            PowerReduceCollector(operator.add, "tie"),
            run(PowerMapCollector(f, "tie"), xs),
        )
        assert composed == run(HomomorphismCollector(f, operator.add), xs)

    @given(pow2_lists())
    def test_reduce_promotion_over_tie(self, xs):
        # reduce(p | q) == reduce(p) ⊕ reduce(q)
        if len(xs) < 2:
            return
        half = len(xs) // 2
        whole = run(PowerReduceCollector(operator.add), xs)
        parts = run(PowerReduceCollector(operator.add), xs[:half]) + run(
            PowerReduceCollector(operator.add), xs[half:]
        )
        assert whole == parts

    @given(pow2_lists(max_log=4))
    def test_reduce_zip_equals_tie_for_commutative(self, xs):
        assert run(PowerReduceCollector(operator.add, "zip"), xs) == run(
            PowerReduceCollector(operator.add, "tie"), xs
        )


class TestScanLaws:
    @given(pow2_lists())
    def test_scan_last_is_reduce(self, xs):
        scan = prefix_sum(xs, parallel=False)
        total = run(PowerReduceCollector(operator.add), xs)
        assert scan[-1] == total

    @given(pow2_lists())
    def test_scan_of_map_is_map_scan_commute(self, xs):
        # scan(+) ∘ map(c·) == map(c·) ∘ scan(+)   (linearity)
        c = 3
        lhs = prefix_sum(run(PowerMapCollector(lambda x: c * x, "tie"), xs),
                         parallel=False)
        rhs = run(
            PowerMapCollector(lambda x: c * x, "tie"), prefix_sum(xs, parallel=False)
        )
        assert lhs == rhs

    @given(pow2_lists(max_log=4))
    def test_scan_is_prefix_closed(self, xs):
        # The scan of a prefix is a prefix of the scan.
        scan = prefix_sum(xs, parallel=False)
        if len(xs) >= 2:
            half = len(xs) // 2
            assert prefix_sum(xs[:half], parallel=False) == scan[:half]
