"""Pipeline fuzzing: random op chains vs a reference interpreter.

Hypothesis composes random pipelines from the full intermediate-op
vocabulary — including the counted (``limit``/``skip``), ``distinct``,
and ``zip`` forms that fuse into kernels since PR 10 — and checks
agreement across every execution mode: sequential and parallel,
per-element and chunked, all three backends, against a plain-Python
reference interpreter.  This is the catch-all net over op-fusion,
barrier segmentation, ordering guarantees, and the bulk-execution fast
path's automatic fallback.

The CI ``fusion-fuzz`` job pins hypothesis's PRNG per run through the
``FUSION_FUZZ_SEED`` environment variable (seed list single-sourced in
``.github/fusion-fuzz-seeds.json``, mirrored by ``make fusion-fuzz``),
so a sweep failure replays locally with the same generated pipelines.
"""

import functools
import os

import pytest
from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings
from hypothesis import strategies as st

from repro.forkjoin import ForkJoinPool
from repro.streams import bulk_execution, bulk_stats, fusion, stream_of
from repro.streams.fusion import _FUSIBLE_TYPES, FusedOp, fuse_ops, maybe_fuse
from repro.streams.ops import LimitOp, SkipOp, select_mode

_FUZZ_SEED = os.environ.get("FUSION_FUZZ_SEED")


def _seeded(test):
    """Pin hypothesis's PRNG when ``FUSION_FUZZ_SEED`` is set (the CI
    fusion-fuzz sweep); unseeded runs keep full randomized exploration."""
    if _FUZZ_SEED is not None:
        return hypothesis_seed(int(_FUZZ_SEED))(test)
    return test


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="fuzz")
    yield p
    p.shutdown()


# --------------------------------------------------------------------------- #
# Each op: (name, params) with a Stream applier and a reference applier.
# --------------------------------------------------------------------------- #

def _apply_stream(stream, op):
    name, arg = op
    if name == "map":
        return stream.map(lambda x, a=arg: x * a + 1)
    if name == "filter":
        return stream.filter(lambda x, a=arg: x % (a + 2) != 0)
    if name == "flat_map":
        return stream.flat_map(lambda x, a=arg: [x] * (abs(x + a) % 3))
    if name == "peek":
        return stream.peek(lambda x: None)
    if name == "map_multi":
        return stream.map_multi(
            lambda x, emit, a=arg: emit(x + a) if x % 2 else None
        )
    if name == "distinct":
        return stream.distinct()
    if name == "sorted":
        return stream.sorted(reverse=bool(arg % 2))
    if name == "limit":
        return stream.limit(arg)
    if name == "skip":
        return stream.skip(arg)
    if name == "take_while":
        return stream.take_while(lambda x, a=arg: abs(x) < a * 7 + 5)
    if name == "drop_while":
        return stream.drop_while(lambda x, a=arg: abs(x) < a * 3 + 2)
    raise AssertionError(name)


def _apply_reference(values, op):
    name, arg = op
    if name == "map":
        return [x * arg + 1 for x in values]
    if name == "filter":
        return [x for x in values if x % (arg + 2) != 0]
    if name == "flat_map":
        return [x for x in values for _ in range(abs(x + arg) % 3)]
    if name == "peek":
        return list(values)
    if name == "map_multi":
        return [x + arg for x in values if x % 2]
    if name == "distinct":
        return list(dict.fromkeys(values))
    if name == "sorted":
        return sorted(values, reverse=bool(arg % 2))
    if name == "limit":
        return values[:arg]
    if name == "skip":
        return values[arg:]
    if name == "take_while":
        out = []
        for x in values:
            if abs(x) >= arg * 7 + 5:
                break
            out.append(x)
        return out
    if name == "drop_while":
        out = []
        dropping = True
        for x in values:
            if dropping and abs(x) < arg * 3 + 2:
                continue
            dropping = False
            out.append(x)
        return out
    raise AssertionError(name)


# Picklable twins of the lambda-based appliers above: the process backend
# ships stage functions to worker children, so they must be module-level
# functions (bound via functools.partial), with identical semantics.

def _pk_map(x, a):
    return x * a + 1


def _pk_filter(x, a):
    return x % (a + 2) != 0


def _pk_flat_map(x, a):
    return [x] * (abs(x + a) % 3)


def _pk_peek(x):
    return None


def _pk_map_multi(x, emit, a):
    if x % 2:
        emit(x + a)


def _pk_take_while(x, a):
    return abs(x) < a * 7 + 5


def _pk_drop_while(x, a):
    return abs(x) < a * 3 + 2


def _apply_stream_picklable(stream, op):
    name, arg = op
    if name == "map":
        return stream.map(functools.partial(_pk_map, a=arg))
    if name == "filter":
        return stream.filter(functools.partial(_pk_filter, a=arg))
    if name == "flat_map":
        return stream.flat_map(functools.partial(_pk_flat_map, a=arg))
    if name == "peek":
        return stream.peek(_pk_peek)
    if name == "map_multi":
        return stream.map_multi(functools.partial(_pk_map_multi, a=arg))
    if name == "take_while":
        return stream.take_while(functools.partial(_pk_take_while, a=arg))
    if name == "drop_while":
        return stream.drop_while(functools.partial(_pk_drop_while, a=arg))
    # distinct/sorted/limit/skip hold no user callables — same as before.
    return _apply_stream(stream, op)


STATELESS = ["map", "filter", "flat_map", "peek", "map_multi"]
STATEFUL = ["distinct", "sorted", "limit", "skip", "take_while", "drop_while"]

OPS = st.tuples(st.sampled_from(STATELESS + STATEFUL), st.integers(0, 9))

pipelines = st.lists(OPS, max_size=6)
inputs = st.lists(st.integers(-40, 40), max_size=60)


class TestPipelineFuzz:
    @_seeded
    @settings(deadline=None, max_examples=120,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_sequential_matches_reference(self, xs, ops):
        stream = stream_of(xs)
        expected = list(xs)
        for op in ops:
            stream = _apply_stream(stream, op)
            expected = _apply_reference(expected, op)
        assert stream.to_list() == expected

    @_seeded
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_parallel_matches_reference(self, xs, ops):
        stream = stream_of(xs).parallel()
        expected = list(xs)
        for op in ops:
            stream = _apply_stream(stream, op)
            expected = _apply_reference(expected, op)
        assert stream.to_list() == expected

    @_seeded
    @settings(deadline=None, max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_terminals_consistent(self, xs, ops):
        def build(parallel):
            s = stream_of(xs).parallel() if parallel else stream_of(xs)
            for op in ops:
                s = _apply_stream(s, op)
            return s

        assert build(False).count() == build(True).count()
        seq_first = build(False).find_first()
        par_first = build(True).find_first()
        assert seq_first == par_first

    @_seeded
    @settings(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_chunked_vs_element_all_modes(self, xs, ops):
        """Four-way parity: {sequential, parallel} × {chunked, per-element}
        all agree with the reference, including encounter order."""
        expected = list(xs)
        for op in ops:
            expected = _apply_reference(expected, op)

        def run(parallel, chunked):
            with bulk_execution(chunked):
                s = stream_of(xs).parallel() if parallel else stream_of(xs)
                for op in ops:
                    s = _apply_stream(s, op)
                return s.to_list()

        assert run(False, True) == expected
        assert run(False, False) == expected
        assert run(True, True) == expected
        assert run(True, False) == expected

    @_seeded
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_chunked_engagement_matches_select_mode(self, xs, ops):
        """The traversal the run actually takes matches what
        ``select_mode`` says about the fused chain — the same decision
        function execution and ``explain()`` share.  Counted runs
        (``limit``/``skip`` fused into kernels) ride the chunked path;
        ``take_while``-style polling still falls back; either way the
        results match the reference."""
        expected = list(xs)
        stream = stream_of(xs)
        for op in ops:
            stream = _apply_stream(stream, op)
            expected = _apply_reference(expected, op)
        mode = select_mode(maybe_fuse(stream._ops))
        bulk_stats(reset=True)
        assert stream.to_list() == expected
        stats = bulk_stats(reset=True)
        if mode == "chunked":
            assert stats["chunked"] == 1 and stats["element"] == 0
        else:
            assert stats["chunked"] == 0 and stats["element"] >= 1

    @_seeded
    @settings(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_fused_vs_unfused_all_engines(self, xs, ops):
        """Fusion on/off must agree element-for-element on every engine:
        {sequential, parallel} × {chunked, per-element}, all against the
        reference interpreter."""
        expected = list(xs)
        for op in ops:
            expected = _apply_reference(expected, op)

        def run(parallel, chunked, fuse):
            with bulk_execution(chunked), fusion(fuse):
                s = stream_of(xs).parallel() if parallel else stream_of(xs)
                for op in ops:
                    s = _apply_stream(s, op)
                return s.to_list()

        for parallel in (False, True):
            for chunked in (True, False):
                fused = run(parallel, chunked, fuse=True)
                unfused = run(parallel, chunked, fuse=False)
                assert fused == unfused == expected

    @_seeded
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_backend_sweep_matches_reference(self, xs, ops):
        """Six-way parity: {sequential, threads, process} backends ×
        {chunked, per-element} traversal, exact results against the
        reference interpreter.  Process-backend runs ship their op chains
        to worker children, so this leg uses the picklable op appliers."""
        expected = list(xs)
        for op in ops:
            expected = _apply_reference(expected, op)

        def run(backend, chunked):
            with bulk_execution(chunked):
                s = stream_of(xs, parallel=True, backend=backend)
                for op in ops:
                    s = _apply_stream_picklable(s, op)
                return s.to_list()

        for backend in ("sequential", "threads", "process"):
            for chunked in (True, False):
                assert run(backend, chunked) == expected, (backend, chunked)

    @_seeded
    @settings(deadline=None, max_examples=12,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_auto_threshold_matches_fixed(self, xs, ops):
        """The adaptive split policy is a scheduling decision, never a
        semantic one: ``target_size='auto'`` must produce results
        identical to a fixed threshold on every backend, warm or cold
        memo alike (each example runs auto twice — the second run uses
        the learned cost)."""
        from repro.streams import adaptive

        expected = list(xs)
        for op in ops:
            expected = _apply_reference(expected, op)

        def run(backend, target_size):
            s = stream_of(xs, parallel=True, backend=backend,
                          target_size=target_size)
            for op in ops:
                s = _apply_stream_picklable(s, op)
            return s.to_list()

        adaptive.reset_split_policy()
        try:
            for backend in ("sequential", "threads", "process"):
                assert run(backend, 7) == expected, backend
                assert run(backend, "auto") == expected, backend
                assert run(backend, "auto") == expected, backend
        finally:
            adaptive.reset_split_policy()
            adaptive.split_policy_stats(reset=True)

    @_seeded
    @settings(deadline=None, max_examples=120,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, pipelines)
    def test_fuse_rewrite_structure(self, xs, ops):
        """Structural invariants of the rewrite on random chains: the
        unfusible stateful ops (``sorted``/``take_while``/``drop_while``)
        survive as barriers in order, each FusedOp covers a maximal run
        (>= 2 stages, or any run containing a counted ``limit``/``skip``
        — even a lone one compiles so it can ride the chunked path), and
        flattening the rewritten chain reproduces the original op objects
        exactly."""
        stream = stream_of(xs)
        for op in ops:
            stream = _apply_stream(stream, op)
        original = stream._ops
        fused, stages = fuse_ops(original)

        flattened = []
        for op in fused:
            if isinstance(op, FusedOp):
                assert len(op.source_ops) >= 2 or any(
                    type(o) in (LimitOp, SkipOp) for o in op.source_ops
                )
                flattened.extend(op.source_ops)
            else:
                flattened.append(op)
        assert flattened == list(original)
        assert stages == sum(
            len(op.source_ops) for op in fused if isinstance(op, FusedOp)
        )

        for i, op in enumerate(fused):
            if not isinstance(op, FusedOp):
                continue
            # Maximality: the neighbours of a fused run are unfusible
            # barriers — any fusible neighbour would have been folded
            # into the run.
            for neighbour in (fused[i - 1] if i else None,
                              fused[i + 1] if i + 1 < len(fused) else None):
                if neighbour is not None:
                    assert not isinstance(neighbour, FusedOp)
                    assert type(neighbour) not in _FUSIBLE_TYPES
                    assert neighbour.stateful or neighbour.short_circuit


# --------------------------------------------------------------------------- #
# Zip fuzzing: two independently-fused sides drained in lockstep
# --------------------------------------------------------------------------- #

def _pk_zip_combine(a, b):
    return a * 2 - b


def _apply_zip_reference(xs, ys, left_ops, right_ops, combined):
    left = list(xs)
    for op in left_ops:
        left = _apply_reference(left, op)
    right = list(ys)
    for op in right_ops:
        right = _apply_reference(right, op)
    if combined:
        return [_pk_zip_combine(a, b) for a, b in zip(left, right)]
    return list(zip(left, right))


# Sides draw from the fusible vocabulary plus the cursor fallbacks:
# limit/skip/distinct compile into kernels (chunked cursor mode), sorted
# is a terminal barrier with a fused prefix, take_while forces the
# per-element cursor fallback — all three fill modes get exercised.
ZIP_SIDE_OPS = st.tuples(
    st.sampled_from(STATELESS + ["limit", "skip", "distinct", "sorted",
                                 "take_while"]),
    st.integers(0, 9),
)
zip_sides = st.lists(ZIP_SIDE_OPS, max_size=4)


class TestZipFuzz:
    @_seeded
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, inputs, zip_sides, zip_sides,
           st.booleans())
    def test_zip_matches_reference_all_modes(self, xs, ys, left_ops,
                                             right_ops, combined):
        """zip of two random fused pipelines agrees with the reference
        under {chunked, per-element} × {fused, unfused} — the two-cursor
        lockstep drain must be invisible to semantics."""
        expected = _apply_zip_reference(xs, ys, left_ops, right_ops, combined)
        combine = _pk_zip_combine if combined else None
        for chunked in (True, False):
            for fuse in (True, False):
                with bulk_execution(chunked), fusion(fuse):
                    left = stream_of(xs)
                    for op in left_ops:
                        left = _apply_stream(left, op)
                    right = stream_of(ys)
                    for op in right_ops:
                        right = _apply_stream(right, op)
                    got = left.zip(right, combine).to_list()
                assert got == expected, (chunked, fuse)

    @_seeded
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(inputs, inputs, zip_sides, zip_sides)
    def test_zip_downstream_pipeline_parallel(self, xs, ys, left_ops,
                                              right_ops):
        """Ops *after* the zip (including a counted limit) run on the
        pair stream, sequentially and on the fork/join pool."""
        expected = _apply_zip_reference(xs, ys, left_ops, right_ops, True)
        expected = [v + 1 for v in expected if v % 3 != 0][:7]

        def build():
            left = stream_of(xs)
            for op in left_ops:
                left = _apply_stream(left, op)
            right = stream_of(ys)
            for op in right_ops:
                right = _apply_stream(right, op)
            return (left.zip_with(right, _pk_zip_combine)
                    .filter(lambda v: v % 3 != 0)
                    .map(lambda v: v + 1)
                    .limit(7))

        assert build().to_list() == expected
        assert build().parallel().to_list() == expected
