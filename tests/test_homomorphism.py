"""Tests for the fused map∘reduce homomorphism collector."""

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core import (
    HomomorphismCollector,
    PowerMapCollector,
    PowerReduceCollector,
    power_collect,
)
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="hom")
    yield p
    p.shutdown()


def pow2_lists(max_log=6):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-50, 50), min_size=2**k, max_size=2**k)
    )


class TestHomomorphism:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_sum_of_squares(self, parallel, pool):
        data = list(range(128))
        out = power_collect(
            HomomorphismCollector(lambda x: x * x, operator.add),
            data, parallel=parallel, pool=pool,
        )
        assert out == sum(x * x for x in data)

    def test_max_of_abs(self, pool):
        data = [(-1) ** i * i for i in range(64)]
        out = power_collect(HomomorphismCollector(abs, max), data, pool=pool)
        assert out == 63

    def test_string_length_concat_non_commutative(self, pool):
        words = [chr(ord("a") + i % 26) * (i % 3 + 1) for i in range(32)]
        out = power_collect(
            HomomorphismCollector(lambda w: w.upper(), operator.add),
            words, pool=pool,
        )
        assert out == "".join(w.upper() for w in words)

    @given(pow2_lists())
    def test_first_homomorphism_theorem(self, data):
        # h = reduce(op) ∘ map(f): the fused collector must equal the
        # composition of the two separate collectors.
        f = lambda x: 2 * x - 1
        fused = power_collect(
            HomomorphismCollector(f, operator.add), data, parallel=False
        )
        mapped = power_collect(PowerMapCollector(f, "tie"), data, parallel=False)
        composed = power_collect(
            PowerReduceCollector(operator.add, "tie"), mapped, parallel=False
        )
        assert fused == composed

    @pytest.mark.parametrize("target", [1, 4, 32])
    def test_any_leaf_size(self, target, pool):
        data = list(range(64))
        out = power_collect(
            HomomorphismCollector(lambda x: x + 1, operator.add),
            data, pool=pool, target_size=target,
        )
        assert out == sum(range(1, 65))

    def test_zip_needs_commutativity_documented(self, pool):
        # Commutative op under zip: fine.
        data = list(range(64))
        out = power_collect(
            HomomorphismCollector(lambda x: x, operator.add, "zip"),
            data, pool=pool,
        )
        assert out == sum(data)

    def test_empty_rejected(self):
        collector = HomomorphismCollector(lambda x: x, operator.add)
        box = collector.supplier()()
        with pytest.raises(IllegalArgumentError):
            collector.finisher()(box)

    def test_bad_operator(self):
        with pytest.raises(IllegalArgumentError):
            HomomorphismCollector(lambda x: x, operator.add, "bogus")


class TestStreamShortcuts:
    def test_to_set(self):
        from repro.streams import Stream

        assert Stream.of_items(1, 2, 1).to_set() == {1, 2}

    def test_to_dict(self):
        from repro.streams import Stream

        out = Stream.of_items("a", "bb").to_dict(lambda w: w, len)
        assert out == {"a": 1, "bb": 2}

    def test_to_dict_parallel(self):
        from repro.streams import Stream

        out = Stream.range(0, 100).parallel().to_dict(lambda x: x, lambda x: x * 2)
        assert out == {x: 2 * x for x in range(100)}
