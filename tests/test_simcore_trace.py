"""Tests for trace analysis, Gantt rendering, and calibration."""

import pytest

from repro.common import IllegalArgumentError
from repro.simcore import CostModel, SimMachine, build_dc_dag
from repro.simcore.calibrate import (
    calibrate_polynomial_model,
    measure_combine_cost,
    measure_leaf_per_element,
    measure_sequential_per_element,
    measure_split_cost,
)
from repro.simcore.machine import SimResult
from repro.simcore.trace import (
    kind_breakdown,
    render_gantt,
    summarize_workers,
)


@pytest.fixture(scope="module")
def result():
    dag = build_dc_dag(2**14, 2**9, CostModel())
    return SimMachine(4).run(dag)


class TestWorkerSummaries:
    def test_one_summary_per_worker(self, result):
        summaries = summarize_workers(result)
        assert len(summaries) == 4
        assert [s.worker for s in summaries] == [0, 1, 2, 3]

    def test_busy_plus_idle_is_makespan(self, result):
        for s in summarize_workers(result):
            assert s.busy + s.idle == pytest.approx(result.makespan)

    def test_total_busy_equals_work(self, result):
        total = sum(s.busy for s in summarize_workers(result))
        assert total == pytest.approx(result.total_work)

    def test_steal_counts_match(self, result):
        assert sum(s.steals for s in summarize_workers(result)) == result.steals

    def test_utilization_in_range(self, result):
        for s in summarize_workers(result):
            assert 0.0 <= s.utilization <= 1.0

    def test_by_kind_sums_to_busy(self, result):
        for s in summarize_workers(result):
            assert sum(s.by_kind.values()) == pytest.approx(s.busy)


class TestKindBreakdown:
    def test_covers_all_kinds(self, result):
        breakdown = kind_breakdown(result)
        assert set(breakdown) == {"split", "leaf", "combine"}

    def test_sums_to_total_work(self, result):
        assert sum(kind_breakdown(result).values()) == pytest.approx(
            result.total_work
        )

    def test_leaf_work_dominates(self, result):
        breakdown = kind_breakdown(result)
        assert breakdown["leaf"] > breakdown["split"]
        assert breakdown["leaf"] > breakdown["combine"]


class TestGantt:
    def test_renders_rows_per_worker(self, result):
        art = render_gantt(result, width=60)
        lines = art.splitlines()
        assert len(lines) == 4 + 2  # header + 4 workers + legend
        assert lines[1].startswith("w0 ")

    def test_contains_all_glyphs(self, result):
        art = render_gantt(result)
        assert "#" in art and "s" in art and "c" in art

    def test_width_respected(self, result):
        art = render_gantt(result, width=40)
        row = art.splitlines()[1]
        assert len(row.split("|")[1]) == 40

    def test_narrow_width_rejected(self, result):
        with pytest.raises(IllegalArgumentError):
            render_gantt(result, width=5)

    def test_empty_trace(self):
        empty = SimResult(0.0, 0.0, 0.0, 2, 0, trace=[])
        assert render_gantt(empty) == "(empty trace)"


class TestCalibration:
    def test_measurements_positive(self):
        assert measure_sequential_per_element(2**10) > 0
        assert measure_leaf_per_element(2**8) > 0
        assert measure_split_cost(2**8) > 0
        assert measure_combine_cost(2**6) > 0

    def test_calibrated_model_sane(self):
        model = calibrate_polynomial_model()
        assert model.work_per_element == 1.0
        assert 0.05 <= model.seq_work_per_element <= 1.5
        assert model.split_overhead > 0
        assert model.combine_overhead > 0
        assert model.unit_ms > 0

    def test_calibrated_model_runs_figures(self):
        from repro.simcore import sequential_time, simulate_power_function, speedup

        model = calibrate_polynomial_model()
        n = 2**18
        result = simulate_power_function(n, 8, "polynomial", model=model)
        s = speedup(sequential_time(n, "polynomial", model), result.makespan)
        # Real constants still land in a sensible speedup band on 8 cores.
        assert 1.0 < s <= 8.0
