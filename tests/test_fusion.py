"""Stage fusion: rewrite structure, semantics, stats, and observability.

Covers the fusion optimizer (``repro.streams.fusion``): where barriers
land, that fused kernels preserve short-circuit and encounter-order
semantics on both traversal modes, that ``fusion_stats`` pins the
rewrite counts, and that traced runs carry ``fuse`` spans.
"""

import numpy as np
import pytest

from repro.forkjoin import ForkJoinPool
from repro.obs import tracing
from repro.obs.export import trace_snapshot
from repro.streams import (
    FusedOp,
    ListSpliterator,
    bulk_execution,
    bulk_stats,
    fusion,
    fusion_enabled,
    fusion_stats,
    set_fusion,
    stream_of,
)
from repro.streams.fusion import fuse_ops, maybe_fuse
from repro.streams.ops import (
    DistinctOp,
    DropWhileOp,
    FilterOp,
    FlatMapOp,
    LimitOp,
    MapMultiOp,
    MapOp,
    PeekOp,
    SkipOp,
    SortedOp,
    TakeWhileOp,
)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="fusion-test")
    yield p
    p.shutdown()


def _kinds(ops):
    return [type(op).__name__ for op in ops]


class TestBarrierPlacement:
    def test_pure_stateless_chain_collapses_to_one_op(self):
        ops = [MapOp(abs), FilterOp(bool), MapOp(abs), PeekOp(print)]
        fused, stages = fuse_ops(ops)
        assert _kinds(fused) == ["FusedOp"]
        assert stages == 4
        assert fused[0].kinds == ("map", "filter", "map", "peek")

    @pytest.mark.parametrize("barrier", [
        SortedOp(), TakeWhileOp(bool), DropWhileOp(bool),
    ])
    def test_unfusible_stateful_op_is_a_barrier(self, barrier):
        ops = [MapOp(abs), MapOp(abs), barrier, MapOp(abs), MapOp(abs)]
        fused, stages = fuse_ops(ops)
        assert _kinds(fused) == ["FusedOp", type(barrier).__name__, "FusedOp"]
        assert stages == 4

    @pytest.mark.parametrize("absorbed,kind", [
        (DistinctOp(), "distinct"), (LimitOp(3), "limit"), (SkipOp(3), "skip"),
    ])
    def test_counted_and_distinct_ops_fuse_through(self, absorbed, kind):
        ops = [MapOp(abs), MapOp(abs), absorbed, MapOp(abs), MapOp(abs)]
        fused, stages = fuse_ops(ops)
        assert _kinds(fused) == ["FusedOp"]
        assert stages == 5
        assert fused[0].kinds == ("map", "map", kind, "map", "map")

    def test_single_ops_are_not_wrapped(self):
        ops = [MapOp(abs), SortedOp(), MapOp(abs)]
        fused, stages = fuse_ops(ops)
        assert fused is ops and stages == 0

    def test_fused_op_requires_a_nonempty_run(self):
        # Singleton runs are legal now (a lone ``limit`` compiles to a
        # counted kernel); only an empty run is malformed.
        with pytest.raises(ValueError):
            FusedOp([])

    def test_rewrite_is_idempotent(self):
        ops = [MapOp(abs), MapOp(abs)]
        fused, stages = fuse_ops(ops)
        again, stages_again = fuse_ops(fused)
        assert again is fused and stages_again == 0

    def test_fused_op_flags(self):
        op = FusedOp([MapOp(abs), FilterOp(bool)])
        assert op.chunkable and not op.stateful and not op.short_circuit


class TestSemantics:
    DATA = list(range(-30, 30))

    def _both(self, build, chunked):
        with bulk_execution(chunked):
            with fusion(True):
                fused = build(stream_of(self.DATA)).to_list()
            with fusion(False):
                unfused = build(stream_of(self.DATA)).to_list()
        return fused, unfused

    @pytest.mark.parametrize("chunked", [True, False])
    def test_map_filter_flat_map_chain(self, chunked):
        def build(s):
            return (s.map(lambda x: x + 3)
                    .filter(lambda x: x % 4 != 0)
                    .flat_map(lambda x: [x, -x] if x % 5 == 0 else [x])
                    .map(lambda x: x * 2))

        fused, unfused = self._both(build, chunked)
        assert fused == unfused

    @pytest.mark.parametrize("chunked", [True, False])
    def test_peek_and_map_multi_chain(self, chunked):
        fused_seen, unfused_seen = [], []

        def build(s, seen):
            return (s.peek(seen.append)
                    .map_multi(lambda x, emit: (emit(x), emit(x * 10))[0])
                    .map(lambda x: x + 1))

        with bulk_execution(chunked):
            with fusion(True):
                fused = build(stream_of(self.DATA), fused_seen).to_list()
            with fusion(False):
                unfused = build(stream_of(self.DATA), unfused_seen).to_list()
        assert fused == unfused
        assert fused_seen == unfused_seen == self.DATA

    def test_filter_first_and_consecutive_filters(self):
        def build(s):
            return (s.filter(lambda x: x != 0)
                    .filter(lambda x: x % 2 == 0)
                    .map(lambda x: x + 1)
                    .filter(lambda x: x < 20))

        fused, unfused = self._both(build, True)
        assert fused == unfused

    def test_short_circuit_limit_after_fused_run(self):
        def build(s):
            return (s.map(lambda x: x + 1)
                    .map(lambda x: x * 2)
                    .limit(7))

        fused, unfused = self._both(build, True)
        assert fused == unfused and len(fused) == 7

    def test_infinite_flat_map_under_limit_terminates(self):
        # The fused kernel must poll downstream cancellation between an
        # expander's outputs, exactly like the unfused FlatMapSink —
        # otherwise this loops forever.
        with fusion(True):
            out = (stream_of([1, 2, 3])
                   .flat_map(lambda x: iter(int, 1))
                   .map(lambda z: z + 1)
                   .limit(5)
                   .to_list())
        assert out == [1] * 5

    def test_take_while_downstream_of_fused_run(self):
        def build(s):
            return (s.map(lambda x: x + 30)
                    .map(lambda x: x * 2)
                    .take_while(lambda x: x < 90))

        fused, unfused = self._both(build, True)
        assert fused == unfused

    def test_stateful_sandwich(self):
        def build(s):
            return (s.map(lambda x: x % 17)
                    .map(lambda x: x + 2)
                    .distinct()
                    .map(lambda x: x * 3)
                    .filter(lambda x: x != 6)
                    .sorted())

        fused, unfused = self._both(build, True)
        assert fused == unfused

    def test_parallel_leaves_fuse_identically(self, pool):
        def build(s):
            return (s.map(lambda x: x + 1)
                    .filter(lambda x: x % 3 != 0)
                    .map(lambda x: x * 2)
                    .map(lambda x: x - 5))

        with fusion(True):
            par = build(
                stream_of(self.DATA).parallel().with_pool(pool)
            ).to_list()
            seq = build(stream_of(self.DATA)).to_list()
        with fusion(False):
            reference = build(stream_of(self.DATA)).to_list()
        assert par == seq == reference

    def test_parallel_match_and_find_with_fusion(self, pool):
        with fusion(True):
            s = (stream_of(self.DATA).parallel().with_pool(pool)
                 .map(lambda x: x * 2).map(lambda x: x + 1))
            assert s.any_match(lambda x: x > 50)
            found = (stream_of(self.DATA).parallel().with_pool(pool)
                     .map(lambda x: x * 2)
                     .filter(lambda x: x > 40)
                     .find_first())
        assert found.get() == 42

    def test_ufunc_chain_stays_vectorized_and_exact(self):
        data = np.arange(1 << 10, dtype=np.int64)

        def build(s):
            return s.map(np.square).map(np.abs).map(np.sqrt)

        with fusion(True):
            fused = build(stream_of(data)).to_list()
        with fusion(False):
            unfused = build(stream_of(data)).to_list()
        assert fused == unfused

    def test_ufunc_prefix_with_python_tail(self):
        data = np.arange(1 << 10, dtype=np.int64)

        def build(s):
            return (s.map(np.square)
                    .map(lambda x: int(x) % 11)
                    .filter(lambda x: x != 4))

        with fusion(True):
            fused = build(stream_of(data)).to_list()
        with fusion(False):
            unfused = build(stream_of(data)).to_list()
        assert fused == unfused

    def test_lazy_iterator_path_fuses(self):
        with fusion(True):
            fusion_stats(reset=True)
            it = iter(stream_of(self.DATA).map(lambda x: x + 1).map(abs))
            first = next(it)
        assert first == abs(self.DATA[0] + 1)
        assert fusion_stats()["pipelines_fused"] == 1

    def test_begin_size_preserved_for_map_only_runs(self):
        sizes = []

        class _Probe:
            def begin(self, size):
                sizes.append(size)

            def accept(self, item):
                pass

            def accept_chunk(self, chunk):
                pass

            def cancellation_requested(self):
                return False

            def end(self):
                pass

        map_run = FusedOp([MapOp(abs), MapOp(abs)])
        map_run.wrap_sink(_Probe()).begin(64)
        filter_run = FusedOp([MapOp(abs), FilterOp(bool)])
        filter_run.wrap_sink(_Probe()).begin(64)
        assert sizes == [64, -1]


class TestControlsAndStats:
    def test_set_fusion_roundtrip(self):
        previous = set_fusion(False)
        try:
            assert not fusion_enabled()
            ops = [MapOp(abs), MapOp(abs)]
            assert maybe_fuse(ops) is ops
        finally:
            set_fusion(previous)
        assert fusion_enabled() == previous

    def test_stats_pin_fused_stage_counts(self):
        with fusion(True):
            fusion_stats(reset=True)
            (stream_of(range(50))
             .map(lambda x: x + 1)
             .map(lambda x: x * 2)
             .filter(lambda x: x % 3 != 0)
             .sorted()
             .map(lambda x: x - 1)
             .map(lambda x: x ^ 3)
             .to_list())
        stats = fusion_stats()
        assert stats["pipelines_fused"] == 1
        assert stats["stages_fused"] == 5
        assert stats["kernels"] == 2

    def test_stats_count_unfusible_scans(self):
        with fusion(True):
            fusion_stats(reset=True)
            stream_of(range(10)).map(lambda x: x + 1).to_list()
        stats = fusion_stats()
        assert stats["pipelines_fused"] == 0
        assert stats["unfused"] == 1

    def test_parallel_terminal_fuses_once_via_memo(self, pool):
        with fusion(True):
            fusion_stats(reset=True)
            (stream_of(list(range(1 << 12))).parallel().with_pool(pool)
             .map(lambda x: x + 1)
             .map(lambda x: x * 2)
             .to_list())
        stats = fusion_stats()
        # One rewrite at the terminal; every fork/join leaf resolves the
        # already-fused chain from the memo instead of recompiling.
        assert stats["pipelines_fused"] == 1
        assert stats["memo_hits"] >= 1

    def test_disabled_fusion_still_correct(self):
        with fusion(False):
            out = (stream_of(range(20))
                   .map(lambda x: x + 1)
                   .map(lambda x: x * 2)
                   .to_list())
        assert out == [(x + 1) * 2 for x in range(20)]

    def test_chunked_path_still_engages_with_fusion(self):
        with fusion(True):
            bulk_stats(reset=True)
            (stream_of(list(range(100)))
             .map(lambda x: x + 1)
             .map(lambda x: x * 2)
             .to_list())
        stats = bulk_stats()
        assert stats["chunked"] == 1 and stats["element"] == 0


class TestObservability:
    def test_traced_run_emits_fuse_span(self):
        with tracing() as tracer:
            with fusion(True):
                (stream_of(list(range(100)))
                 .map(lambda x: x + 1)
                 .map(lambda x: x * 2)
                 .to_list())
        snapshot = trace_snapshot(tracer.spans())
        assert snapshot["counts"].get("fuse") == 1
        fuse_span = [s for s in tracer.spans() if s.kind == "fuse"][0]
        assert fuse_span.args["stages"] == 2
        assert fuse_span.args["kernels"] == 1

    def test_untraced_rewrite_emits_nothing(self):
        with tracing() as tracer:
            pass
        with fusion(True):
            stream_of(range(10)).map(abs).map(abs).to_list()
        assert [s for s in tracer.spans() if s.kind == "fuse"] == []

    def test_parallel_traced_run_has_fuse_and_leaf_spans(self, pool):
        with tracing() as tracer:
            with fusion(True):
                (stream_of(list(range(1 << 12))).parallel().with_pool(pool)
                 .map(lambda x: x + 1)
                 .map(lambda x: x * 2)
                 .to_list())
        counts = trace_snapshot(tracer.spans())["counts"]
        assert counts.get("fuse", 0) >= 1
        assert counts.get("leaf", 0) >= 1


def _plus_one(x):
    return x + 1


def _is_even(x):
    return x % 2 == 0


def _is_negative(x):
    return x < 0


class _CountingListSpliterator(ListSpliterator):
    """Instrumented source: counts ``next_chunk`` fetches."""

    def __init__(self, data, counter):
        super().__init__(data)
        self._counter = counter

    def next_chunk(self, max_size):
        self._counter[0] += 1
        return super().next_chunk(max_size)


class TestCountedKernelEdgeCases:
    """Fused ``limit(0)`` / ``skip(n >= size)`` must match unfused
    semantics exactly — empty results, no over-fetching — across both
    traversal modes and all three backends."""

    DATA = list(range(257))

    def _run(self, build, *, fused, chunked):
        with fusion(fused), bulk_execution(chunked):
            return build(stream_of(self.DATA)).to_list()

    @pytest.mark.parametrize("chunked", [True, False])
    @pytest.mark.parametrize("edge", [
        lambda s: s.map(_plus_one).limit(0),
        lambda s: s.map(_plus_one).skip(257),
        lambda s: s.map(_plus_one).skip(10_000),
        lambda s: s.filter(_is_even).limit(0),
        lambda s: s.map(_plus_one).limit(257),
        lambda s: s.map(_plus_one).limit(10_000),
        lambda s: s.map(_plus_one).skip(256).limit(5),
    ])
    def test_edge_windows_match_unfused(self, edge, chunked):
        expect = self._run(edge, fused=False, chunked=chunked)
        got = self._run(edge, fused=True, chunked=chunked)
        assert got == expect

    @pytest.mark.parametrize("backend", ["sequential", "threads", "process"])
    @pytest.mark.parametrize("edge,expect", [
        (lambda s: s.map(_plus_one).limit(0), []),
        (lambda s: s.map(_plus_one).skip(300), []),
        (lambda s: s.filter(_is_even).skip(129), []),
        (lambda s: s.map(_plus_one).skip(250).limit(100),
         [x + 1 for x in range(250, 257)]),
    ])
    def test_edges_across_backends(self, backend, edge, expect):
        if backend == "process":
            pytest.importorskip("multiprocessing.shared_memory")
        with fusion(True):
            got = edge(
                stream_of(self.DATA).parallel().with_backend(backend)
            ).to_list()
        assert got == expect

    def test_limit_zero_fetches_no_chunks(self):
        fetches = [0]
        sp = _CountingListSpliterator(self.DATA, fetches)
        from repro.streams import StreamSupport

        with fusion(True), bulk_execution(True):
            got = StreamSupport.stream(sp).map(_plus_one).limit(0).to_list()
        assert got == []
        assert fetches[0] == 0

    def test_kernel_class_pins(self):
        assert FusedOp([MapOp(abs), LimitOp(3)]).kernel_class == (
            "counted-window")
        assert FusedOp([MapOp(abs), SkipOp(2), LimitOp(3)]).kernel_class == (
            "counted-window")
        assert FusedOp([FilterOp(bool), LimitOp(3)]).kernel_class == (
            "counted-loop")
        assert FusedOp([MapOp(abs), DistinctOp()]).kernel_class == (
            "stateful-loop")
        assert FusedOp([MapOp(np.negative), MapOp(np.abs)]).kernel_class == (
            "whole-array")

    @pytest.mark.parametrize("backend", ["sequential", "threads"])
    def test_limit_after_draining_barrier_empty_prefix(self, backend):
        # Regression: a parallel ``limit`` whose upstream barrier drained
        # the stream to nothing used to spin forever in the budget's
        # contiguous-interval walk (zero-width leaf intervals can never
        # advance the frontier).
        with fusion(True):
            got = (
                stream_of(self.DATA).parallel().with_backend(backend)
                .take_while(_is_negative)
                .limit(3)
            ).to_list()
        assert got == []

    @pytest.mark.parametrize("fused", [True, False])
    def test_iterator_flushes_barrier_after_satisfied_limit(self, fused):
        # Regression (found by the zip fuzz): the lazy pull path broke
        # out on a satisfied limit without end()-flushing a downstream
        # barrier, so ``limit(n).sorted()`` lost its elements.
        with fusion(fused):
            got = list(stream_of([3, 1, 2]).limit(2).sorted().iterator())
        assert got == [1, 3]
