"""Tests for the process-pool PowerFunction executor."""

import operator
import random
import threading
import time

import numpy as np
import pytest

from repro.common import IllegalArgumentError
from repro.jplf import JplfMap, JplfPolynomialValue, JplfReduce, JplfSort
from repro.jplf.process_executor import ProcessExecutor
from repro.powerlist import PowerList


def _square(x):
    """Module-level mapper (lambdas don't pickle)."""
    return x * x


def _slow_leaf(payload):
    """A leaf slow enough for a shutdown to land mid-run."""
    time.sleep(0.25)
    return payload


@pytest.fixture(scope="module")
def executor():
    with ProcessExecutor(processes=2) as ex:
        yield ex


class TestProcessExecutor:
    def test_reduce(self, executor):
        data = list(range(512))
        out = executor.execute(JplfReduce(PowerList(data), operator.add))
        assert out == sum(data)

    def test_map_with_named_function(self, executor):
        data = list(range(256))
        out = executor.execute(JplfMap(PowerList(data), _square))
        assert out == [x * x for x in data]

    def test_polynomial(self, executor):
        rng = random.Random(51)
        coeffs = [rng.uniform(-1, 1) for _ in range(512)]
        out = executor.execute(JplfPolynomialValue(PowerList(coeffs), 0.97))
        assert out == pytest.approx(np.polyval(coeffs, 0.97), rel=1e-9)

    def test_sort(self, executor):
        rng = random.Random(52)
        data = [rng.randint(0, 999) for _ in range(256)]
        assert executor.execute(JplfSort(PowerList(data))) == sorted(data)

    def test_agrees_with_sequential(self, executor):
        from repro.jplf import SequentialExecutor

        data = [(i * 37) % 101 for i in range(256)]
        fn = lambda: JplfReduce(PowerList(data), operator.add)
        assert executor.execute(fn()) == SequentialExecutor().execute(fn())

    def test_single_process_degenerates(self):
        ex = ProcessExecutor(processes=1)
        out = ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), operator.add))
        assert out == 10
        ex.shutdown()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(IllegalArgumentError):
            ProcessExecutor(processes=3)

    def test_input_smaller_than_processes_rejected(self, executor):
        with pytest.raises(IllegalArgumentError):
            executor.execute(JplfReduce(PowerList([1]), operator.add))

    def test_shared_external_pool_not_shut_down(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            ex = ProcessExecutor(processes=2, pool=pool)
            assert ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), operator.add)) == 10
            ex.shutdown()  # must NOT kill the external pool
            # Pool still usable:
            assert pool.submit(_square, 3).result() == 9

    def test_four_processes(self):
        with ProcessExecutor(processes=4) as ex:
            data = list(range(1024))
            assert ex.execute(JplfReduce(PowerList(data), operator.add)) == sum(data)


class TestLifecycle:
    def test_execute_after_shutdown_rejected(self):
        from repro.common import RejectedExecutionError

        ex = ProcessExecutor(processes=2)
        ex.shutdown()
        with pytest.raises(RejectedExecutionError):
            ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), operator.add))

    def test_shutdown_is_idempotent(self):
        ex = ProcessExecutor(processes=1)
        ex.shutdown()
        ex.shutdown()  # must not raise

    def test_context_manager_rejects_after_exit(self):
        from repro.common import RejectedExecutionError

        with ProcessExecutor(processes=2) as ex:
            assert ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), operator.add)) == 10
        with pytest.raises(RejectedExecutionError):
            ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), operator.add))

    def test_pool_reused_across_calls(self, executor):
        data = list(range(64))
        executor.execute(JplfReduce(PowerList(data), operator.add))
        pool_first = executor._pool
        executor.execute(JplfReduce(PowerList(data), operator.add))
        assert executor._pool is pool_first

    def test_shutdown_races_in_flight_run_without_hanging(self):
        """shutdown() during an active run_leaves must cancel its pending
        batches and surface RejectedExecutionError to the waiter in
        bounded time — not hang the FIRST_EXCEPTION wait loop."""
        from repro.common import RejectedExecutionError

        ex = ProcessExecutor(processes=2)
        outcome = {}

        def waiter():
            try:
                # 16 slow payloads → 4 batches of 4: two batches run,
                # two sit pending when shutdown strikes.
                outcome["result"] = ex.run_leaves(
                    _slow_leaf, list(range(16)), label="race victim"
                )
            except BaseException as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.4)  # let the scatter reach the wait loop
        start = time.monotonic()
        ex.shutdown()
        assert time.monotonic() - start < 5.0, "shutdown blocked on children"
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "run_leaves hung after shutdown"
        assert isinstance(outcome.get("error"), RejectedExecutionError)
        assert "in flight" in str(outcome["error"])
        # The executor is now in the ordinary rejecting state.
        with pytest.raises(RejectedExecutionError):
            ex.run_leaves(_slow_leaf, list(range(4)))

    def test_shutdown_with_no_active_runs_stays_synchronous(self):
        ex = ProcessExecutor(processes=2)
        assert ex.run_leaves(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        ex.shutdown()  # idle: plain blocking teardown, nothing to cancel
        ex.shutdown()  # still idempotent


class TestFaultRecovery:
    """Injected child faults: raise/kill → retry on a fresh pool →
    sequential fallback, with the recovery visible in ``stats()``."""

    def test_injected_raise_recovers_via_retry(self):
        from repro.faults import FaultPlan, RetryPolicy, fault_injection

        data = list(range(256))
        plan = FaultPlan(seed=1).inject("proc:worker-0", "raise", times=1)
        with ProcessExecutor(processes=2, retry=RetryPolicy(max_attempts=2)) as ex:
            with fault_injection(plan):
                out = ex.execute(JplfReduce(PowerList(data), operator.add))
            assert out == sum(data)
            assert ex.stats()["retries"] == 1
        assert plan.stats()["injected"] == 1

    def test_killed_worker_breaks_pool_then_retry_recovers(self):
        from repro.faults import FaultPlan, RetryPolicy, fault_injection

        data = list(range(256))
        plan = FaultPlan(seed=2).inject("proc:worker-1", "kill", times=1)
        with ProcessExecutor(processes=2, retry=RetryPolicy(max_attempts=3)) as ex:
            with fault_injection(plan):
                out = ex.execute(JplfReduce(PowerList(data), operator.add))
            assert out == sum(data)
            stats = ex.stats()
        # The SIGKILL-style exit broke the ProcessPoolExecutor; the
        # executor discarded it and retried on fresh workers.
        assert stats["broken_pools"] == 1
        assert stats["retries"] == 1
        assert stats["degraded_runs"] == 0

    def test_unbounded_faults_degrade_to_sequential(self):
        from repro.faults import FaultPlan, RetryPolicy, fault_injection
        from repro.faults import policy as fault_policy

        data = list(range(256))
        plan = FaultPlan(seed=3).inject("proc:*", "raise")  # every ship, always
        before = fault_policy.stats()["degraded_runs"]
        with ProcessExecutor(
            processes=2, retry=RetryPolicy(max_attempts=2), fallback=True
        ) as ex:
            with fault_injection(plan):
                out = ex.execute(JplfReduce(PowerList(data), operator.add))
            assert out == sum(data)
            assert ex.stats()["degraded_runs"] == 1
        assert fault_policy.stats()["degraded_runs"] == before + 1

    def test_fault_without_policy_propagates(self):
        from repro.faults import FaultInjected, FaultPlan, fault_injection

        data = list(range(256))
        plan = FaultPlan(seed=4).inject("proc:worker-0", "raise", times=1)
        with ProcessExecutor(processes=2) as ex:
            with fault_injection(plan):
                with pytest.raises(FaultInjected):
                    ex.execute(JplfReduce(PowerList(data), operator.add))
