"""Tests for the extended JPLF function set (inv, WHT) and rfft."""

import random

import numpy as np
import pytest

from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, SequentialExecutor
from repro.jplf.functions import JplfInv, JplfWalshHadamard
from repro.powerlist import PowerList


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="jplf-ext")
    yield p
    p.shutdown()


class TestJplfInv:
    @pytest.mark.parametrize("executor_factory", [
        lambda pool: SequentialExecutor(),
        lambda pool: SequentialExecutor(threshold=4),
        lambda pool: ForkJoinExecutor(pool),
        lambda pool: ForkJoinExecutor(pool, threshold=8),
    ])
    def test_matches_core_inv(self, executor_factory, pool):
        from repro.core import inv

        data = list(range(64))
        out = executor_factory(pool).execute(JplfInv(PowerList(data)))
        assert out == inv(data, parallel=False)

    def test_involution(self, pool):
        data = [(i * 11) % 37 for i in range(32)]
        ex = ForkJoinExecutor(pool)
        once = ex.execute(JplfInv(PowerList(data)))
        twice = ex.execute(JplfInv(PowerList(once)))
        assert twice == data

    def test_singleton(self):
        assert SequentialExecutor().execute(JplfInv(PowerList([9]))) == [9]


class TestJplfWalshHadamard:
    @pytest.mark.parametrize("n_log", [0, 1, 3, 5])
    def test_matches_scipy(self, n_log, pool):
        from scipy.linalg import hadamard

        rng = random.Random(n_log)
        n = 2**n_log
        data = [rng.uniform(-1, 1) for _ in range(n)]
        out = ForkJoinExecutor(pool).execute(JplfWalshHadamard(PowerList(data)))
        np.testing.assert_allclose(out, hadamard(n) @ np.array(data), atol=1e-9)

    def test_matches_core_collector(self, pool):
        from repro.core import walsh_hadamard

        data = [float((i * 7) % 5) for i in range(32)]
        jplf_out = SequentialExecutor().execute(JplfWalshHadamard(PowerList(data)))
        np.testing.assert_allclose(jplf_out, walsh_hadamard(data, parallel=False))

    def test_descending_transform_is_structural(self):
        # The children carry transformed *data*, not shared state.
        fn = JplfWalshHadamard(PowerList([1.0, 2.0, 3.0, 4.0]))
        left, right = fn.subfunctions()
        assert left.data.to_list() == [4.0, 6.0]
        assert right.data.to_list() == [-2.0, -2.0]


class TestRfft:
    @pytest.mark.parametrize("n_log", [1, 4, 8])
    def test_matches_numpy_rfft(self, n_log, pool):
        rng = random.Random(n_log)
        data = [rng.uniform(-1, 1) for _ in range(2**n_log)]
        from repro.core.fft import rfft

        np.testing.assert_allclose(
            rfft(data, pool=pool), np.fft.rfft(data), rtol=1e-8, atol=1e-8
        )

    def test_length_is_half_plus_one(self):
        from repro.core.fft import rfft

        assert len(rfft([1.0] * 16, parallel=False)) == 9
