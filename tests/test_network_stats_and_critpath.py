"""Tests for comparator-network statistics and critical-path witnesses."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network_stats import (
    batcher_sort_stats,
    bitonic_merge_stats,
    bitonic_sort_stats,
    count_merge_comparators,
    odd_even_merge_stats,
)
from repro.simcore import CostModel, build_dc_dag
from repro.simcore.dag import build_nway_dag


class TestOddEvenMergeStats:
    @pytest.mark.parametrize("n,size,depth", [(1, 1, 1), (2, 3, 2), (4, 9, 3), (8, 25, 4)])
    def test_small_cases(self, n, size, depth):
        stats = odd_even_merge_stats(n)
        assert stats.comparators == size
        assert stats.depth == depth

    @given(st.integers(0, 8))
    def test_closed_form(self, k):
        # M(n) = n·log2(n) + 1 solves M(n) = 2M(n/2) + n − 1, M(1)=1.
        n = 2**k
        assert odd_even_merge_stats(n).comparators == n * k + 1

    @given(st.integers(0, 6))
    def test_matches_instrumented_implementation(self, k):
        n = 2**k
        assert count_merge_comparators(n) == odd_even_merge_stats(n).comparators


class TestBatcherSortStats:
    def test_small_cases(self):
        assert batcher_sort_stats(1).comparators == 0
        assert batcher_sort_stats(2).comparators == 1
        assert batcher_sort_stats(4).comparators == 5
        assert batcher_sort_stats(8).comparators == 19

    @given(st.integers(1, 10))
    def test_n_log_squared_growth(self, k):
        n = 2**k
        stats = batcher_sort_stats(n)
        # Size is Θ(n log² n): sandwich with explicit constants.
        assert stats.comparators <= n * k * (k + 1) // 2
        assert stats.comparators >= n * k * (k - 1) // 4

    @given(st.integers(1, 10))
    def test_depth_quadratic_in_log(self, k):
        assert batcher_sort_stats(2**k).depth == k * (k + 1) // 2


class TestBitonicStats:
    @given(st.integers(0, 10))
    def test_merge_formulas(self, k):
        n = 2**k
        stats = bitonic_merge_stats(n)
        assert stats.comparators == (n // 2) * k
        assert stats.depth == k

    @given(st.integers(1, 10))
    def test_sort_formulas(self, k):
        n = 2**k
        stats = bitonic_sort_stats(n)
        assert stats.comparators == (n // 4) * k * (k + 1)
        assert stats.depth == k * (k + 1) // 2

    def test_bitonic_bigger_than_batcher(self):
        # Batcher's network is smaller at every size — the reason it wins
        # as a sorting *network* even though bitonic maps better to SIMD.
        for k in range(2, 10):
            n = 2**k
            assert batcher_sort_stats(n).comparators < bitonic_sort_stats(n).comparators


class TestCriticalPathStrands:
    def test_chain_cost_equals_tinf(self):
        dag = build_dc_dag(2**10, 2**4, CostModel())
        chain = dag.critical_path_strands()
        chain_cost = sum(dag.strands[sid].cost for sid in chain)
        assert chain_cost == pytest.approx(dag.critical_path())

    def test_chain_is_a_dependency_path(self):
        dag = build_dc_dag(2**8, 2**3, CostModel())
        chain = dag.critical_path_strands()
        for earlier, later in zip(chain, chain[1:]):
            assert earlier in dag.strands[later].deps

    def test_singleton_dag(self):
        dag = build_dc_dag(1, 1, CostModel())
        assert dag.critical_path_strands() == [0]

    def test_empty_dag(self):
        from repro.simcore.dag import StrandDag

        assert StrandDag().critical_path_strands() == []

    def test_nway_dag_chain(self):
        dag = build_nway_dag(81, 3, CostModel(), arity=3)
        chain = dag.critical_path_strands()
        assert sum(dag.strands[sid].cost for sid in chain) == pytest.approx(
            dag.critical_path()
        )

    def test_chain_passes_through_root(self):
        dag = build_dc_dag(2**6, 2**2, CostModel())
        chain = dag.critical_path_strands()
        assert chain[0] == 0  # the root split starts every path
        assert dag.strands[chain[-1]].kind == "combine"
