"""Tests for the Spliterator protocol and stock implementations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams import (
    ArraySpliterator,
    Characteristics,
    EmptySpliterator,
    IteratorSpliterator,
    ListSpliterator,
    RangeSpliterator,
    spliterator_of,
)
from repro.streams.spliterator import UNKNOWN_SIZE


def drain(spliterator):
    """Collect all remaining elements via for_each_remaining."""
    out = []
    spliterator.for_each_remaining(out.append)
    return out


def drain_advance(spliterator):
    """Collect all remaining elements via try_advance."""
    out = []
    while spliterator.try_advance(out.append):
        pass
    return out


def split_fully(spliterator, out=None):
    """Recursively split to singletons, collecting elements in order."""
    if out is None:
        out = []
    prefix = spliterator.try_split()
    if prefix is None:
        out.extend(drain(spliterator))
        return out
    split_fully(prefix, out)
    split_fully(spliterator, out)
    return out


class TestListSpliterator:
    def test_traversal(self):
        assert drain(ListSpliterator([1, 2, 3])) == [1, 2, 3]
        assert drain_advance(ListSpliterator([1, 2, 3])) == [1, 2, 3]

    def test_try_advance_exhaustion(self):
        s = ListSpliterator([1])
        assert s.try_advance(lambda x: None)
        assert not s.try_advance(lambda x: None)

    def test_split_hands_off_prefix(self):
        s = ListSpliterator([1, 2, 3, 4])
        prefix = s.try_split()
        assert drain(prefix) == [1, 2]
        assert drain(s) == [3, 4]

    def test_subsized_invariant(self):
        s = ListSpliterator(list(range(10)))
        before = s.estimate_size()
        prefix = s.try_split()
        assert prefix.estimate_size() + s.estimate_size() == before

    def test_split_to_exhaustion(self):
        s = ListSpliterator([1])
        assert s.try_split() is None

    @given(st.lists(st.integers(), max_size=200))
    def test_full_split_preserves_order(self, xs):
        assert split_fully(ListSpliterator(xs)) == xs

    def test_characteristics(self):
        s = ListSpliterator([1, 2, 3, 4])
        assert s.has_characteristics(Characteristics.SIZED)
        assert s.has_characteristics(Characteristics.SUBSIZED)
        assert s.has_characteristics(Characteristics.ORDERED)
        assert s.has_characteristics(Characteristics.POWER2)

    def test_power2_characteristic_tracks_length(self):
        assert not ListSpliterator([1, 2, 3]).has_characteristics(
            Characteristics.POWER2
        )
        s = ListSpliterator(list(range(8)))
        prefix = s.try_split()
        assert prefix.has_characteristics(Characteristics.POWER2)
        assert s.has_characteristics(Characteristics.POWER2)

    def test_get_exact_size_if_known(self):
        assert ListSpliterator([1, 2]).get_exact_size_if_known() == 2

    def test_subrange(self):
        s = ListSpliterator([0, 1, 2, 3, 4], origin=1, fence=4)
        assert drain(s) == [1, 2, 3]

    def test_array_alias(self):
        import numpy as np

        s = ArraySpliterator(np.array([1.0, 2.0]))
        assert drain(s) == [1.0, 2.0]


class TestRangeSpliterator:
    def test_traversal(self):
        assert drain(RangeSpliterator(2, 6)) == [2, 3, 4, 5]
        assert drain_advance(RangeSpliterator(0, 3)) == [0, 1, 2]

    def test_split(self):
        s = RangeSpliterator(0, 8)
        prefix = s.try_split()
        assert drain(prefix) == [0, 1, 2, 3]
        assert drain(s) == [4, 5, 6, 7]

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_full_split(self, lo, extra):
        hi = lo + extra
        assert split_fully(RangeSpliterator(lo, hi)) == list(range(lo, hi))

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            RangeSpliterator(5, 2)

    def test_characteristics(self):
        s = RangeSpliterator(0, 16)
        for flag in (
            Characteristics.SIZED,
            Characteristics.SORTED,
            Characteristics.DISTINCT,
            Characteristics.POWER2,
        ):
            assert s.has_characteristics(flag)
        assert not RangeSpliterator(0, 3).has_characteristics(Characteristics.POWER2)


class TestIteratorSpliterator:
    def test_traversal(self):
        s = IteratorSpliterator(iter([1, 2, 3]))
        assert drain(s) == [1, 2, 3]

    def test_try_advance(self):
        s = IteratorSpliterator(iter([7]))
        assert drain_advance(s) == [7]

    def test_unknown_size(self):
        s = IteratorSpliterator(iter([1, 2]))
        assert s.estimate_size() == UNKNOWN_SIZE
        assert s.get_exact_size_if_known() == -1
        assert not s.has_characteristics(Characteristics.SIZED)

    def test_known_size(self):
        s = IteratorSpliterator(iter([1, 2]), size_estimate=2)
        assert s.estimate_size() == 2
        assert s.has_characteristics(Characteristics.SIZED)

    def test_split_batches_prefix(self):
        s = IteratorSpliterator(iter(range(5000)))
        prefix = s.try_split()
        first_batch = drain(prefix)
        assert first_batch == list(range(len(first_batch)))
        assert drain(s) == list(range(len(first_batch), 5000))

    def test_split_empty_returns_none(self):
        s = IteratorSpliterator(iter([]))
        assert s.try_split() is None

    def test_size_estimate_decrements(self):
        s = IteratorSpliterator(iter(range(10)), size_estimate=10)
        s.try_advance(lambda x: None)
        assert s.estimate_size() == 9

    @given(st.lists(st.integers(), max_size=300))
    def test_full_split_preserves_order(self, xs):
        assert split_fully(IteratorSpliterator(iter(xs))) == xs


class TestEmptySpliterator:
    def test_everything_empty(self):
        s = EmptySpliterator()
        assert not s.try_advance(lambda x: None)
        assert s.try_split() is None
        assert s.estimate_size() == 0
        assert drain(s) == []


class TestSpliteratorOf:
    def test_sequence_gets_list_spliterator(self):
        assert isinstance(spliterator_of([1, 2]), ListSpliterator)

    def test_spliterator_passes_through(self):
        s = ListSpliterator([1])
        assert spliterator_of(s) is s

    def test_sized_iterable(self):
        s = spliterator_of({1, 2, 3})
        assert s.estimate_size() == 3

    def test_generator(self):
        s = spliterator_of(x for x in range(3))
        assert drain(s) == [0, 1, 2]
