"""Tests for the PowerList functions expressed as stream collectors."""

import cmath
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import NotPowerOfTwoError, NotSimilarError
from repro.core import (
    FftCollector,
    IdentityCollector,
    InvCollector,
    PolynomialValue,
    PowerArray,
    PowerMapCollector,
    PowerReduceCollector,
    PrefixSumCollector,
    batcher_merge_sort,
    bitonic_sort,
    fft,
    gray_code_sequence,
    inv,
    polynomial_value,
    power_collect,
    prefix_sum,
    to_gray,
    walsh_hadamard,
)
from repro.core.fft import fft_sequential, powers
from repro.core.gray import from_gray, gray_map
from repro.core.inv import inv_indices
from repro.core.polynomial import horner
from repro.core.sorting import bitonic_merge, odd_even_merge
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="core-test")
    yield p
    p.shutdown()


def pow2_lists(elements=st.integers(-1000, 1000), max_log=7, min_log=0):
    return st.integers(min_log, max_log).flatmap(
        lambda k: st.lists(elements, min_size=2**k, max_size=2**k)
    )


class TestPowerArray:
    def test_add_and_len(self):
        a = PowerArray()
        a.add(1)
        a.add(2)
        assert len(a) == 2
        assert a.to_list() == [1, 2]

    def test_tie_all(self):
        a, b = PowerArray([1, 2]), PowerArray([3, 4])
        assert a.tie_all(b).to_list() == [1, 2, 3, 4]

    def test_zip_all(self):
        a, b = PowerArray([1, 3]), PowerArray([2, 4])
        assert a.zip_all(b).to_list() == [1, 2, 3, 4]

    def test_zip_all_requires_similar(self):
        with pytest.raises(NotSimilarError):
            PowerArray([1]).zip_all(PowerArray([1, 2]))

    def test_replace(self):
        a = PowerArray([1])
        assert a.replace([9, 9]).to_list() == [9, 9]

    def test_eq_iter_getitem(self):
        a = PowerArray([1, 2])
        assert a == PowerArray([1, 2])
        assert list(a) == [1, 2]
        assert a[1] == 2
        assert a.__eq__(3) is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PowerArray())


class TestIdentity:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_roundtrip(self, operator, parallel, pool):
        data = list(range(64))
        out = power_collect(
            IdentityCollector(operator), data, parallel=parallel, pool=pool
        )
        assert out == data

    def test_paper_snippet_shape(self, pool):
        # The paper's first example: ZipSpliterator + PowerList::zipAll.
        data = [float(i) for i in range(16)]
        assert power_collect(IdentityCollector("zip"), data, pool=pool) == data

    @pytest.mark.parametrize("target", [1, 2, 4, 16])
    def test_any_leaf_size(self, target, pool):
        data = list(range(32))
        out = power_collect(
            IdentityCollector("zip"), data, pool=pool, target_size=target
        )
        assert out == data

    def test_rejects_non_power_of_two(self, pool):
        with pytest.raises(NotPowerOfTwoError):
            power_collect(IdentityCollector(), [1, 2, 3], pool=pool)

    def test_bad_operator(self):
        with pytest.raises(Exception):
            IdentityCollector("bogus")

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists())
    def test_property_roundtrip(self, data):
        assert power_collect(IdentityCollector("zip"), data, parallel=False) == data


class TestMapReduce:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_map(self, operator, parallel, pool):
        data = list(range(64))
        out = power_collect(
            PowerMapCollector(lambda x: x * x, operator), data, parallel, pool
        )
        assert out == [x * x for x in data]

    @pytest.mark.parametrize("operator", ["tie", "zip"])
    def test_reduce_commutative(self, operator, pool):
        data = list(range(128))
        out = power_collect(PowerReduceCollector(lambda a, b: a + b, operator), data, pool=pool)
        assert out == sum(data)

    def test_reduce_non_commutative_needs_tie(self, pool):
        # String concatenation: associative but not commutative.
        data = [chr(ord("a") + i) for i in range(32)]
        out = power_collect(
            PowerReduceCollector(lambda a, b: a + b, "tie"), data, pool=pool
        )
        assert out == "".join(data)

    def test_reduce_max(self, pool):
        data = [(i * 37) % 101 for i in range(64)]
        assert power_collect(PowerReduceCollector(max), data, pool=pool) == max(data)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists(max_log=6))
    def test_map_property(self, data):
        out = power_collect(
            PowerMapCollector(lambda x: x + 1, "zip"), data, parallel=False
        )
        assert out == [x + 1 for x in data]


class TestPolynomial:
    def test_horner_matches_numpy(self):
        coeffs = [3.0, -2.0, 1.0, 5.0]
        assert horner(coeffs, 2.0) == pytest.approx(np.polyval(coeffs, 2.0))

    @pytest.mark.parametrize("parallel", [False, True])
    def test_small_polynomial(self, parallel, pool):
        coeffs = [1.0, 2.0, 3.0, 4.0]  # x³ + 2x² + 3x + 4
        out = polynomial_value(coeffs, 2.0, parallel=parallel, pool=pool)
        assert out == pytest.approx(1 * 8 + 2 * 4 + 3 * 2 + 4)

    @pytest.mark.parametrize("size_log", [4, 8, 12])
    @pytest.mark.parametrize("x", [0.5, 1.0, -0.7, 1.001])
    def test_matches_numpy_polyval(self, size_log, x, pool):
        rng = random.Random(42 + size_log)
        coeffs = [rng.uniform(-1, 1) for _ in range(2**size_log)]
        out = polynomial_value(coeffs, x, pool=pool)
        assert out == pytest.approx(np.polyval(coeffs, x), rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("target", [1, 4, 64])
    def test_any_uniform_leaf_size(self, target, pool):
        rng = random.Random(7)
        coeffs = [rng.uniform(-1, 1) for _ in range(256)]
        out = polynomial_value(coeffs, 0.9, pool=pool, target_size=target)
        assert out == pytest.approx(np.polyval(coeffs, 0.9), rel=1e-9)

    def test_x_degree_reaches_leaf_depth(self, pool):
        pv = PolynomialValue(1.0)
        power_collect(pv, [1.0] * 16, pool=pool, target_size=1)
        assert pv.x_degree == 16

    def test_sequential_keeps_degree_one(self):
        pv = PolynomialValue(2.0)
        out = power_collect(pv, [1.0, 1.0, 1.0, 1.0], parallel=False)
        assert pv.x_degree == 1
        assert out == pytest.approx(8 + 4 + 2 + 1)

    @settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        pow2_lists(st.floats(-1, 1, allow_nan=False), max_log=6),
        st.floats(-1.25, 1.25, allow_nan=False),
    )
    def test_property_matches_numpy(self, coeffs, x):
        out = polynomial_value(coeffs, x, parallel=False)
        assert out == pytest.approx(np.polyval(coeffs, x), rel=1e-6, abs=1e-6)


class TestInv:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_bit_reversal(self, operator, parallel, pool):
        n = 64
        data = list(range(n))
        out = inv(data, operator=operator, parallel=parallel, pool=pool)
        expected = [None] * n
        for i, target in enumerate(inv_indices(n)):
            expected[target] = data[i]
        assert out == expected

    def test_involution(self, pool):
        data = [(i * 13) % 64 for i in range(64)]
        assert inv(inv(data, pool=pool), pool=pool) == data

    def test_singleton(self):
        assert inv([42], parallel=False) == [42]

    @pytest.mark.parametrize("target", [1, 2, 8])
    def test_any_leaf_size(self, target, pool):
        data = list(range(32))
        out = power_collect(InvCollector("tie"), data, pool=pool, target_size=target)
        assert out == inv(data, parallel=False)


class TestFft:
    def test_powers_are_roots_of_unity(self):
        u = powers(4)
        w = cmath.exp(-2j * cmath.pi / 8)
        for k, val in enumerate(u):
            assert val == pytest.approx(w**k)

    @pytest.mark.parametrize("n_log", [0, 1, 4, 8])
    def test_sequential_matches_numpy(self, n_log):
        rng = random.Random(n_log)
        data = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(2**n_log)]
        out = fft_sequential(data)
        np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("parallel", [False, True])
    @pytest.mark.parametrize("n_log", [4, 8, 10])
    def test_collector_matches_numpy(self, parallel, n_log, pool):
        rng = random.Random(100 + n_log)
        data = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(2**n_log)]
        out = fft(data, parallel=parallel, pool=pool)
        np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("target", [1, 4, 32])
    def test_any_leaf_size(self, target, pool):
        rng = random.Random(5)
        data = [complex(rng.uniform(-1, 1)) for _ in range(128)]
        out = fft(data, pool=pool, target_size=target)
        np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-8, atol=1e-8)

    def test_inverse_roundtrip_via_conjugate(self, pool):
        data = [complex(i, -i) for i in range(16)]
        forward = fft(data, pool=pool)
        back = [v.conjugate() for v in fft([v.conjugate() for v in forward], pool=pool)]
        np.testing.assert_allclose([v / 16 for v in back], data, atol=1e-9)


class TestPrefixSum:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_accumulate(self, parallel, pool):
        import itertools

        data = [(i * 7) % 13 for i in range(128)]
        out = prefix_sum(data, parallel=parallel, pool=pool)
        assert out == list(itertools.accumulate(data))

    def test_custom_operator_max(self, pool):
        import itertools

        data = [(i * 29) % 17 for i in range(64)]
        out = prefix_sum(data, op=max, pool=pool)
        assert out == list(itertools.accumulate(data, max))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists(max_log=6))
    def test_property(self, data):
        import itertools

        assert prefix_sum(data, parallel=False) == list(itertools.accumulate(data))


class TestWalshHadamard:
    @pytest.mark.parametrize("parallel", [False, True])
    @pytest.mark.parametrize("n_log", [0, 1, 3, 6])
    def test_matches_scipy_hadamard(self, parallel, n_log, pool):
        from scipy.linalg import hadamard

        rng = random.Random(n_log)
        n = 2**n_log
        data = [rng.uniform(-1, 1) for _ in range(n)]
        out = walsh_hadamard(data, parallel=parallel, pool=pool)
        expected = hadamard(n) @ np.array(data)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("target", [1, 2, 8])
    def test_any_leaf_size(self, target, pool):
        from scipy.linalg import hadamard

        data = [float(i) for i in range(32)]
        out = walsh_hadamard(data, pool=pool, target_size=target)
        np.testing.assert_allclose(out, hadamard(32) @ np.array(data), atol=1e-9)

    def test_self_inverse_scaled(self, pool):
        data = [1.0, -2.0, 3.0, 0.5]
        twice = walsh_hadamard(walsh_hadamard(data, pool=pool), pool=pool)
        np.testing.assert_allclose([v / 4 for v in twice], data, atol=1e-12)


class TestSorting:
    @given(
        st.lists(st.integers(-100, 100), min_size=4, max_size=4),
        st.lists(st.integers(-100, 100), min_size=4, max_size=4),
    )
    def test_odd_even_merge(self, a, b):
        out = odd_even_merge(sorted(a), sorted(b))
        assert out == sorted(a + b)

    def test_odd_even_merge_rejects_dissimilar(self):
        with pytest.raises(ValueError):
            odd_even_merge([1], [1, 2])

    @pytest.mark.parametrize("parallel", [False, True])
    def test_batcher_sort(self, parallel, pool):
        rng = random.Random(3)
        data = [rng.randint(0, 1000) for _ in range(128)]
        assert batcher_merge_sort(data, parallel=parallel, pool=pool) == sorted(data)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists(max_log=6))
    def test_batcher_property(self, data):
        assert batcher_merge_sort(data, parallel=False) == sorted(data)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pow2_lists(max_log=6))
    def test_bitonic_property(self, data):
        assert bitonic_sort(data) == sorted(data)

    def test_bitonic_descending(self):
        assert bitonic_sort([3, 1, 2, 4], ascending=False) == [4, 3, 2, 1]

    def test_bitonic_merge_on_bitonic_input(self):
        bitonic = [1, 3, 5, 7, 6, 4, 2, 0]
        assert bitonic_merge(bitonic) == sorted(bitonic)


class TestGray:
    def test_sequence_small(self):
        assert gray_code_sequence(1) == [0, 1]
        assert gray_code_sequence(2) == [0, 1, 3, 2]
        assert gray_code_sequence(3) == [0, 1, 3, 2, 6, 7, 5, 4]

    @pytest.mark.parametrize("bits", [1, 2, 5, 8])
    def test_sequence_properties(self, bits):
        seq = gray_code_sequence(bits)
        n = 1 << bits
        assert sorted(seq) == list(range(n))  # a permutation
        for a, b in zip(seq, seq[1:]):
            assert bin(a ^ b).count("1") == 1  # adjacent codes differ by 1 bit
        assert bin(seq[0] ^ seq[-1]).count("1") == 1  # cyclic too

    def test_sequence_matches_formula(self):
        assert gray_code_sequence(6) == [to_gray(i) for i in range(64)]

    @given(st.integers(0, 10**6))
    def test_to_from_gray_roundtrip(self, i):
        assert from_gray(to_gray(i)) == i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            to_gray(-1)
        with pytest.raises(ValueError):
            from_gray(-1)

    def test_gray_map_collector(self, pool):
        values = list(range(64))
        assert gray_map(values, pool=pool) == [to_gray(i) for i in values]
