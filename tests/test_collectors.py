"""Tests for the Collector interface and stock collectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalStateError
from repro.streams import Collector, CollectorCharacteristics, Collectors, Optional, Stream, stream_of


class TestCollectorOf:
    def test_builds_from_functions(self):
        c = Collector.of(list, lambda acc, t: acc.append(t), lambda a, b: a + b)
        container = c.supplier()()
        c.accumulator()(container, 5)
        assert container == [5]
        assert c.combiner()([1], [2]) == [1, 2]
        assert c.finisher()([1]) == [1]

    def test_default_characteristics_identity_finish(self):
        c = Collector.of(list, lambda a, t: None, lambda a, b: a)
        assert c.characteristics() & CollectorCharacteristics.IDENTITY_FINISH

    def test_finisher_clears_identity_default(self):
        c = Collector.of(list, lambda a, t: None, lambda a, b: a, finisher=len)
        assert not (c.characteristics() & CollectorCharacteristics.IDENTITY_FINISH)
        assert c.finisher()([1, 2]) == 2


class TestStockCollectors:
    def test_to_list(self):
        assert Stream.range(0, 3).collect(Collectors.to_list()) == [0, 1, 2]

    def test_to_set(self):
        assert Stream.of_items(1, 2, 1).collect(Collectors.to_set()) == {1, 2}

    def test_to_dict(self):
        out = Stream.of_items("a", "bb").collect(
            Collectors.to_dict(lambda s: s, len)
        )
        assert out == {"a": 1, "bb": 2}

    def test_to_dict_duplicate_raises(self):
        with pytest.raises(IllegalStateError):
            Stream.of_items("x", "x").collect(
                Collectors.to_dict(lambda s: s, len)
            )

    def test_to_dict_merge(self):
        out = Stream.of_items("x", "x", "y").collect(
            Collectors.to_dict(lambda s: s, lambda s: 1, lambda a, b: a + b)
        )
        assert out == {"x": 2, "y": 1}

    def test_joining(self):
        out = Stream.of_items("a", "b", "c").collect(Collectors.joining(", "))
        assert out == "a, b, c"

    def test_joining_prefix_suffix(self):
        out = Stream.of_items("a", "b").collect(Collectors.joining("-", "[", "]"))
        assert out == "[a-b]"

    def test_joining_empty(self):
        assert Stream.empty().collect(Collectors.joining(",")) == ""

    def test_counting(self):
        assert Stream.range(0, 9).collect(Collectors.counting()) == 9

    def test_summing(self):
        out = Stream.of_items("a", "bb").collect(Collectors.summing(len))
        assert out == 3

    def test_averaging(self):
        assert Stream.of_items(2, 4).collect(Collectors.averaging()) == 3.0
        assert Stream.empty().collect(Collectors.averaging()) == 0.0

    def test_min_by_max_by(self):
        assert Stream.of_items(3, 1, 2).collect(Collectors.min_by()) == Optional.of(1)
        assert Stream.of_items(3, 1, 2).collect(Collectors.max_by()) == Optional.of(3)
        assert Stream.empty().collect(Collectors.min_by()) == Optional.empty()

    def test_mapping(self):
        out = Stream.of_items("a", "bb").collect(
            Collectors.mapping(len, Collectors.to_list())
        )
        assert out == [1, 2]

    def test_filtering(self):
        out = Stream.range(0, 6).collect(
            Collectors.filtering(lambda x: x % 2 == 0, Collectors.to_list())
        )
        assert out == [0, 2, 4]

    def test_flat_mapping(self):
        out = Stream.of_items([1, 2], [3]).collect(
            Collectors.flat_mapping(lambda xs: xs, Collectors.to_list())
        )
        assert out == [1, 2, 3]

    def test_grouping_by_default_lists(self):
        out = Stream.range(0, 6).collect(Collectors.grouping_by(lambda x: x % 2))
        assert out == {0: [0, 2, 4], 1: [1, 3, 5]}

    def test_grouping_by_downstream(self):
        out = Stream.range(0, 6).collect(
            Collectors.grouping_by(lambda x: x % 2, Collectors.counting())
        )
        assert out == {0: 3, 1: 3}

    def test_partitioning_by(self):
        out = Stream.range(0, 5).collect(Collectors.partitioning_by(lambda x: x < 2))
        assert out == {True: [0, 1], False: [2, 3, 4]}

    def test_partitioning_by_always_has_both_keys(self):
        out = Stream.of_items(1).collect(Collectors.partitioning_by(lambda x: True))
        assert out[False] == []
        assert out[True] == [1]

    def test_reducing(self):
        out = Stream.of_items("a", "bb", "ccc").collect(
            Collectors.reducing(0, len, lambda a, b: a + b)
        )
        assert out == 6

    def test_tee(self):
        out = Stream.range(1, 5).collect(
            Collectors.tee(
                Collectors.summing(),
                Collectors.counting(),
                lambda total, n: total / n,
            )
        )
        assert out == 2.5


class TestCollectorsParallel:
    """Every stock collector must give identical results in parallel."""

    @pytest.mark.parametrize(
        "collector_factory,data",
        [
            (lambda: Collectors.to_list(), list(range(100))),
            (lambda: Collectors.to_set(), [1, 2, 3] * 30),
            (lambda: Collectors.counting(), list(range(57))),
            (lambda: Collectors.summing(), list(range(57))),
            (lambda: Collectors.averaging(), list(range(1, 41))),
            (lambda: Collectors.min_by(), [5, 3, 9, 1, 7] * 10),
            (lambda: Collectors.max_by(), [5, 3, 9, 1, 7] * 10),
            (lambda: Collectors.joining(","), [str(i) for i in range(50)]),
            (
                lambda: Collectors.grouping_by(lambda x: x % 3),
                list(range(60)),
            ),
            (
                lambda: Collectors.to_dict(lambda x: x, lambda x: x * 2),
                list(range(40)),
            ),
        ],
    )
    def test_parallel_equals_sequential(self, collector_factory, data):
        sequential = stream_of(data).collect(collector_factory())
        parallel = stream_of(data).parallel().collect(collector_factory())
        assert parallel == sequential

    def test_paper_joining_combiner_visible_in_parallel(self):
        # The paper's point: the separator between partial results exists
        # only because parallel execution invokes the combiner.
        words = [f"w{i}" for i in range(64)]
        out = stream_of(words).parallel().collect(Collectors.joining(","))
        assert out == ",".join(words)

    @given(st.lists(st.integers(-50, 50), max_size=80))
    def test_grouping_by_property(self, xs):
        expected = {}
        for x in xs:
            expected.setdefault(x % 5, []).append(x)
        out = stream_of(xs).parallel().collect(
            Collectors.grouping_by(lambda x: x % 5)
        )
        assert out == expected
