"""The engine matrix: every function × every execution engine, one answer.

The repository's core guarantee is that a PowerList function means the
same thing everywhere.  This module drives shared workloads through all
engines and pins exact (or fp-tight) agreement.
"""

import operator
import random

import numpy as np
import pytest

from repro.core import (
    batcher_merge_sort,
    fft,
    polynomial_value,
    polynomial_value_tupled,
    power_collect,
    prefix_sum,
    vectorized_fft,
    vectorized_polynomial_value,
    PowerMapCollector,
    PowerReduceCollector,
)
from repro.forkjoin import ForkJoinPool
from repro.jplf import (
    ForkJoinExecutor,
    JplfFft,
    JplfMap,
    JplfPolynomialValue,
    JplfPrefixSum,
    JplfReduce,
    JplfSort,
    SequentialExecutor,
)
from repro.mpi import CommModel, MpiExecutor
from repro.powerlist import PowerList
from repro.powerlist.algebra import induction_tie
from repro.simcore.adapters import simulate_jplf

N = 256
SEED = 2020


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="matrix")
    yield p
    p.shutdown()


@pytest.fixture(scope="module")
def floats():
    rng = random.Random(SEED)
    return [rng.uniform(-1, 1) for _ in range(N)]


@pytest.fixture(scope="module")
def ints():
    rng = random.Random(SEED + 1)
    return [rng.randint(0, 10**6) for _ in range(N)]


class TestPolynomialEngines:
    X = 0.991

    def engines(self, pool):
        return {
            "spec-horner": lambda cs: float(np.polyval(cs, self.X)),
            "stream-seq": lambda cs: polynomial_value(cs, self.X, parallel=False),
            "stream-par": lambda cs: polynomial_value(cs, self.X, pool=pool),
            "stream-tupled": lambda cs: polynomial_value_tupled(cs, self.X, pool=pool),
            "stream-vectorized": lambda cs: vectorized_polynomial_value(
                cs, self.X, pool=pool
            ),
            "jplf-seq": lambda cs: SequentialExecutor().execute(
                JplfPolynomialValue(PowerList(cs), self.X)
            ),
            "jplf-forkjoin": lambda cs: ForkJoinExecutor(pool).execute(
                JplfPolynomialValue(PowerList(cs), self.X)
            ),
            "jplf-simulated": lambda cs: simulate_jplf(
                JplfPolynomialValue(PowerList(cs), self.X), 8, "polynomial"
            )[0],
            "mpi-simulated": lambda cs: MpiExecutor(
                ranks=4, operator_profile="polynomial"
            ).execute(JplfPolynomialValue(PowerList(cs), self.X)).result,
        }

    def test_all_engines_agree(self, pool, floats):
        results = {name: fn(floats) for name, fn in self.engines(pool).items()}
        reference = results.pop("spec-horner")
        for name, value in results.items():
            assert value == pytest.approx(reference, rel=1e-9), name


class TestFftEngines:
    def test_all_engines_agree(self, pool, floats):
        signal = [complex(v) for v in floats]
        reference = np.fft.fft(signal)
        engines = {
            "stream": fft(signal, pool=pool),
            "stream-seq": fft(signal, parallel=False),
            "vectorized": vectorized_fft(signal, pool=pool),
            "jplf": ForkJoinExecutor(pool).execute(JplfFft(PowerList(signal))),
        }
        for name, value in engines.items():
            np.testing.assert_allclose(value, reference, rtol=1e-8, atol=1e-8,
                                       err_msg=name)


class TestMapReduceEngines:
    def test_map_engines_agree(self, pool, ints):
        f = lambda x: (x * 31) % 1009
        reference = [f(x) for x in ints]
        engines = {
            "spec-induction": induction_tie(
                PowerList(ints), lambda a: [f(a)], operator.add
            ),
            "stream-tie": power_collect(PowerMapCollector(f, "tie"), ints, pool=pool),
            "stream-zip": power_collect(PowerMapCollector(f, "zip"), ints, pool=pool),
            "jplf": ForkJoinExecutor(pool).execute(JplfMap(PowerList(ints), f)),
        }
        for name, value in engines.items():
            assert value == reference, name

    def test_reduce_engines_agree(self, pool, ints):
        reference = sum(ints)
        engines = {
            "stream": power_collect(
                PowerReduceCollector(operator.add, "tie"), ints, pool=pool
            ),
            "jplf": ForkJoinExecutor(pool).execute(
                JplfReduce(PowerList(ints), operator.add)
            ),
            "mpi": MpiExecutor(ranks=8).execute(
                JplfReduce(PowerList(ints), operator.add)
            ).result,
            "simulated": simulate_jplf(
                JplfReduce(PowerList(ints), operator.add), 8
            )[0],
        }
        for name, value in engines.items():
            assert value == reference, name


class TestSortScanEngines:
    def test_sort_engines_agree(self, pool, ints):
        reference = sorted(ints)
        assert batcher_merge_sort(ints, pool=pool) == reference
        assert ForkJoinExecutor(pool).execute(JplfSort(PowerList(ints))) == reference

    def test_scan_engines_agree(self, pool, ints):
        import itertools

        reference = list(itertools.accumulate(ints))
        assert prefix_sum(ints, pool=pool) == reference
        jplf_prefix, total = ForkJoinExecutor(pool).execute(
            JplfPrefixSum(PowerList(ints))
        )
        assert jplf_prefix == reference
        assert total == reference[-1]
        from repro.powerlist.functions import ladner_fischer_scan

        assert ladner_fischer_scan(PowerList(ints)).to_list() == reference
        from repro.core.vectorized import vectorized_prefix_sum

        np.testing.assert_allclose(
            vectorized_prefix_sum([float(v) for v in ints], pool=pool),
            np.array(reference, dtype=np.float64),
        )
