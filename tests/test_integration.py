"""End-to-end integration: whole workflows crossing module boundaries."""

import itertools
import random

import numpy as np
import pytest

from repro.core import (
    PowerMapCollector,
    batcher_merge_sort,
    fft,
    inv,
    polynomial_value,
    power_collect,
    power_stream,
    prefix_sum,
)
from repro.core.polynomial import PolynomialValue
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfFft, JplfPolynomialValue, SequentialExecutor
from repro.mpi import CommModel, MpiExecutor
from repro.powerlist import PowerList
from repro.simcore import CostModel, SimMachine, build_dc_dag
from repro.streams import Collectors, Stream


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="integration")
    yield p
    p.shutdown()


class TestPaperExecutionSnippet:
    """The exact flow of the paper's §IV-B code listing."""

    def test_polynomial_value_execution_listing(self, pool):
        # 1. create the PolynomialValue instance (pv)
        pv = PolynomialValue(2.0)
        coeffs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        # 2. create its specialized spliterator over the coefficients and
        #    verify the POWER2 characteristic
        from repro.streams import Characteristics

        spliterator = pv.create_spliterator(coeffs)
        assert spliterator.has_characteristics(Characteristics.POWER2)
        # 3. create the associated parallel stream via StreamSupport
        from repro.streams.stream_support import StreamSupport

        stream = StreamSupport.stream(spliterator, parallel=True).with_pool(pool)
        # 4. invoke collect with the same pv object
        result = stream.collect(pv)
        assert result == pytest.approx(np.polyval(coeffs, 2.0))

    def test_power_stream_helper_equivalent(self, pool):
        pv = PolynomialValue(2.0)
        coeffs = [1.0] * 16
        out = power_stream(pv, coeffs, pool=pool).collect(pv)
        assert out == pytest.approx(np.polyval(coeffs, 2.0))


class TestCrossEngineAgreement:
    """One workload, every engine, one answer."""

    def test_fft_pipeline_feeding_stream_analytics(self, pool):
        rng = random.Random(31)
        signal = [complex(rng.uniform(-1, 1)) for _ in range(256)]
        spectrum = fft(signal, pool=pool)
        # Feed the PowerList-function output into ordinary stream analytics.
        dominant = (
            Stream.of_iterable(list(enumerate(spectrum)))
            .parallel()
            .with_pool(pool)
            .map(lambda kv: (kv[0], abs(kv[1])))
            .max(key=lambda kv: kv[1])
            .get()
        )
        # Real-valued signals have conjugate-symmetric spectra, so the max
        # magnitude is attained at k and n−k; compare magnitudes, and the
        # index up to that mirror symmetry.
        np_spectrum = np.abs(np.fft.fft(signal))
        np_dominant = int(np.argmax(np_spectrum))
        assert dominant[1] == pytest.approx(np_spectrum[np_dominant])
        assert dominant[0] in (np_dominant, len(signal) - np_dominant)

    def test_sorted_prefix_sums_three_ways(self, pool):
        rng = random.Random(32)
        data = [rng.randint(0, 99) for _ in range(128)]
        sorted_data = batcher_merge_sort(data, pool=pool)
        scans = {
            "collector": prefix_sum(sorted_data, pool=pool),
            "jplf": SequentialExecutor().execute(
                __import__("repro.jplf", fromlist=["JplfPrefixSum"]).JplfPrefixSum(
                    PowerList(sorted_data)
                )
            )[0],
            "spec": list(itertools.accumulate(sorted_data)),
        }
        assert scans["collector"] == scans["spec"]
        assert scans["jplf"] == scans["spec"]

    def test_inv_then_fft_is_decimated_layout(self, pool):
        # inv produces the bit-reversed layout used by in-place FFTs;
        # applying inv twice restores the original, so fft(inv(inv(x)))
        # must equal fft(x).
        rng = random.Random(33)
        signal = [complex(rng.uniform(-1, 1)) for _ in range(64)]
        round_tripped = inv(inv(signal, pool=pool), pool=pool)
        np.testing.assert_allclose(
            fft(round_tripped, pool=pool), fft(signal, pool=pool)
        )

    def test_same_pool_shared_across_engines(self, pool):
        # Stream adaptation, JPLF, and plain streams all multiplex one pool.
        coeffs = [1.0] * 64
        a = polynomial_value(coeffs, 0.5, pool=pool)
        b = ForkJoinExecutor(pool).execute(
            JplfPolynomialValue(PowerList(coeffs), 0.5)
        )
        c = Stream.range(0, 10_000).parallel().with_pool(pool).count()
        assert a == pytest.approx(b)
        assert c == 10_000


class TestSimulationMatchesRealDecomposition:
    """The simulated DAG shape equals the real fork/join decomposition."""

    def test_leaf_count_matches_real_supplier_calls(self, pool):
        n, target = 256, 16
        calls = []

        class Counting(PowerMapCollector):
            def supplier(self):
                def supply():
                    calls.append(1)
                    from repro.core.containers import PowerArray

                    return PowerArray()

                return supply

        power_collect(
            Counting(lambda x: x, "tie"), list(range(n)), pool=pool,
            target_size=target,
        )
        dag = build_dc_dag(n, target, CostModel())
        assert len(calls) == dag.leaf_count()

    def test_virtual_and_real_results_on_same_input(self, pool):
        n = 2**12
        rng = random.Random(34)
        coeffs = [rng.uniform(-1, 1) for _ in range(n)]
        real = polynomial_value(coeffs, 0.99, pool=pool, target_size=n // 32)
        assert real == pytest.approx(np.polyval(coeffs, 0.99), rel=1e-9)
        result = SimMachine(8).run(build_dc_dag(n, n // 32, CostModel(), "zip"))
        assert result.makespan > 0  # the performance twin exists and runs


class TestDistributedPipeline:
    def test_mpi_then_local_analytics(self, pool):
        rng = random.Random(35)
        data = [rng.randint(0, 999) for _ in range(2**10)]
        report = MpiExecutor(
            ranks=4,
            threads_per_rank=4,
            comm=CommModel(alpha=500, beta=0.01),
            operator_profile="map",
        ).execute(
            __import__("repro.jplf", fromlist=["JplfSort"]).JplfSort(PowerList(data))
        )
        assert report.result == sorted(data)
        # Post-process the distributed result with local streams.
        median = report.result[len(report.result) // 2]
        count_below = (
            Stream.of_iterable(report.result)
            .parallel()
            .with_pool(pool)
            .filter(lambda x: x < median)
            .count()
        )
        assert count_below <= len(data) // 2

    def test_word_stats_over_powerlist_pipeline(self, pool):
        # Mixed pipeline: PowerList map feeds Collectors.grouping_by.
        words = ["alpha", "beta", "gamma", "delta"] * 8
        lengths = power_collect(
            PowerMapCollector(len, "tie"), words, pool=pool
        )
        histogram = (
            Stream.of_iterable(lengths)
            .parallel()
            .with_pool(pool)
            .collect(Collectors.grouping_by(lambda n: n, Collectors.counting()))
        )
        assert histogram == {5: 24, 4: 8}  # beta has 4 letters
