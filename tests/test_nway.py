"""Tests for the PList n-way spliterator extension (Section V proposal)."""

import pytest

from repro.common import IllegalArgumentError
from repro.core.nway import (
    NWayMapCollector,
    NWayReduceCollector,
    NWayTieSpliterator,
    NWayZipSpliterator,
    nway_collect,
)
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="nway-test")
    yield p
    p.shutdown()


def drain(s):
    out = []
    s.for_each_remaining(out.append)
    return out


class TestNWaySpliterators:
    def test_tie_three_way(self):
        s = NWayTieSpliterator(list(range(9)), arity=3)
        parts = s.try_split_nway()
        assert [drain(p) for p in parts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        assert s.estimate_size() == 0

    def test_zip_three_way(self):
        s = NWayZipSpliterator([0, 3, 6, 1, 4, 7, 2, 5, 8], arity=3)
        parts = s.try_split_nway()
        assert [drain(p) for p in parts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_binary_try_split_disabled(self):
        s = NWayTieSpliterator(list(range(9)), arity=3)
        assert s.try_split() is None

    def test_indivisible_returns_none(self):
        s = NWayTieSpliterator(list(range(10)), arity=3)
        assert s.try_split_nway() is None

    def test_too_small_returns_none(self):
        s = NWayTieSpliterator([1, 2], arity=3)
        assert s.try_split_nway() is None

    def test_arity_validation(self):
        with pytest.raises(IllegalArgumentError):
            NWayTieSpliterator([1, 2], arity=1)

    def test_recursive_three_way(self):
        s = NWayTieSpliterator(list(range(27)), arity=3)
        parts = s.try_split_nway()
        subparts = parts[0].try_split_nway()
        assert [drain(p) for p in subparts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]


class TestNWayCollect:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_map(self, operator, parallel, pool):
        data = list(range(81))
        out = nway_collect(
            NWayMapCollector(lambda x: x * 2, operator), data, arity=3,
            parallel=parallel, pool=pool, target_size=3,
        )
        assert out == [x * 2 for x in data]

    @pytest.mark.parametrize("arity", [2, 3, 4, 6])
    def test_map_various_arities(self, arity, pool):
        n = arity**3
        data = list(range(n))
        out = nway_collect(
            NWayMapCollector(lambda x: -x), data, arity=arity, pool=pool,
            target_size=1,
        )
        assert out == [-x for x in data]

    def test_reduce(self, pool):
        data = list(range(3**4))
        out = nway_collect(
            NWayReduceCollector(lambda a, b: a + b), data, arity=3, pool=pool,
            target_size=3,
        )
        assert out == sum(data)

    def test_reduce_non_commutative_tie(self, pool):
        data = [chr(ord("a") + i % 26) for i in range(27)]
        out = nway_collect(
            NWayReduceCollector(lambda a, b: a + b), data, arity=3, pool=pool,
            target_size=1,
        )
        assert out == "".join(data)

    def test_reduce_empty_rejected(self):
        with pytest.raises(IllegalArgumentError):
            nway_collect(NWayReduceCollector(max), [], arity=3, parallel=False)

    def test_indivisible_length_becomes_leaf(self, pool):
        # Length not divisible by arity: the whole input is one leaf —
        # still correct, just not parallel.
        data = list(range(10))
        out = nway_collect(
            NWayMapCollector(lambda x: x + 1), data, arity=3, pool=pool
        )
        assert out == [x + 1 for x in data]

    def test_mixed_divisibility(self, pool):
        # 18 = 3 * 6: splits 3-way once, then 6-element leaves (not
        # divisible by 3 evenly at target 1 → they split once more).
        data = list(range(18))
        out = nway_collect(
            NWayMapCollector(lambda x: x), data, arity=3, pool=pool, target_size=1
        )
        assert out == data

    def test_bad_operator_rejected(self):
        with pytest.raises(IllegalArgumentError):
            NWayMapCollector(lambda x: x, "bogus")
