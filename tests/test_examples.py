"""Smoke tests: every example script must run to completion.

Each example ends by printing ``<name> OK``; these tests execute them in
a subprocess (fresh interpreter, as a user would) and assert success.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert f"{script.stem} OK" in result.stdout, result.stdout[-2000:]


def test_all_examples_discovered():
    # Guard against the glob silently matching nothing.
    assert len(EXAMPLES) >= 7


def test_bench_cli_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "ab6"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "AB6" in result.stdout
