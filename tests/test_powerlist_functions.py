"""Tests for specification-level PowerList functions (Misra's zoo)."""

import itertools
import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.powerlist import PowerList
from repro.powerlist.functions import (
    ladner_fischer_scan,
    rev,
    rotate_left,
    rotate_right,
    shuffle,
    unshuffle,
)


def pow2_lists(max_log=6):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-100, 100), min_size=2**k, max_size=2**k)
    )


class TestRev:
    @given(pow2_lists())
    def test_matches_builtin(self, xs):
        assert rev(PowerList(xs)).to_list() == xs[::-1]

    @given(pow2_lists(max_log=5))
    def test_involution(self, xs):
        p = PowerList(xs)
        assert rev(rev(p)).to_list() == xs

    def test_singleton(self):
        assert rev(PowerList([7])).to_list() == [7]


class TestRotations:
    @given(pow2_lists())
    def test_rotate_right(self, xs):
        assert rotate_right(PowerList(xs)).to_list() == [xs[-1]] + xs[:-1]

    @given(pow2_lists())
    def test_rotate_left(self, xs):
        assert rotate_left(PowerList(xs)).to_list() == xs[1:] + [xs[0]]

    @given(pow2_lists(max_log=5))
    def test_rotations_inverse(self, xs):
        p = PowerList(xs)
        assert rotate_left(rotate_right(p)).to_list() == xs
        assert rotate_right(rotate_left(p)).to_list() == xs

    def test_full_cycle(self):
        xs = list(range(8))
        p = PowerList(xs)
        for _ in range(8):
            p = rotate_right(p)
        assert p.to_list() == xs


class TestShuffle:
    def test_perfect_shuffle_cards(self):
        # The riffle of [0..7]: halves [0,1,2,3] and [4,5,6,7] interleaved.
        assert shuffle(PowerList(list(range(8)))).to_list() == [0, 4, 1, 5, 2, 6, 3, 7]

    @given(pow2_lists())
    def test_unshuffle_inverts(self, xs):
        p = PowerList(xs)
        assert unshuffle(shuffle(p)).to_list() == xs
        assert shuffle(unshuffle(p)).to_list() == xs

    def test_shuffle_leaves_input_untouched(self):
        xs = list(range(8))
        shuffle(PowerList(xs))
        assert xs == list(range(8))  # input storage not mutated

    def test_shuffle_order_is_inv_conjugate(self):
        # shuffle cycles relate to index doubling mod n-1; sanity: shuffle
        # applied log2(n) times is the identity for n = 8.
        xs = list(range(8))
        p = PowerList(xs)
        for _ in range(3):
            p = shuffle(p)
        assert p.to_list() == xs


class TestLadnerFischerScan:
    @given(pow2_lists())
    def test_matches_accumulate(self, xs):
        out = ladner_fischer_scan(PowerList(xs)).to_list()
        assert out == list(itertools.accumulate(xs))

    @given(pow2_lists())
    def test_max_scan(self, xs):
        out = ladner_fischer_scan(PowerList(xs), max, -(10**9)).to_list()
        assert out == list(itertools.accumulate(xs, max))

    def test_non_commutative_monoid(self):
        # String concatenation: associative, identity "".
        words = ["a", "b", "c", "d"]
        out = ladner_fischer_scan(PowerList(words), operator.add, "").to_list()
        assert out == ["a", "ab", "abc", "abcd"]

    def test_agreement_with_collector_scan(self):
        from repro.core import prefix_sum

        xs = [(i * 13) % 7 for i in range(64)]
        assert ladner_fischer_scan(PowerList(xs)).to_list() == prefix_sum(
            xs, parallel=False
        )
