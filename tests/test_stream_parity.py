"""Java-parity surface: close handlers, bounded iterate, range_closed,
of_nullable, collecting_and_then, immutable collectors."""

import pytest

from repro.streams import Collectors, Stream


class TestCloseHandlers:
    def test_close_runs_in_order(self):
        calls = []
        s = Stream.of_items(1).on_close(lambda: calls.append("a")).on_close(
            lambda: calls.append("b")
        )
        s.close()
        assert calls == ["a", "b"]

    def test_close_idempotent(self):
        calls = []
        s = Stream.of_items(1).on_close(lambda: calls.append(1))
        s.close()
        s.close()
        assert calls == [1]

    def test_handlers_travel_through_pipeline(self):
        calls = []
        s = (
            Stream.range(0, 4)
            .on_close(lambda: calls.append("closed"))
            .map(lambda x: x + 1)
            .filter(lambda x: x > 1)
        )
        assert s.to_list() == [2, 3, 4]
        s.close()
        assert calls == ["closed"]

    def test_all_handlers_run_despite_exception(self):
        calls = []

        def boom():
            raise ValueError("x")

        s = Stream.of_items(1).on_close(boom).on_close(lambda: calls.append(2))
        with pytest.raises(ValueError):
            s.close()
        assert calls == [2]

    def test_context_manager(self):
        calls = []
        with Stream.range(0, 3).on_close(lambda: calls.append("done")) as s:
            assert s.sum() == 3
        assert calls == ["done"]


class TestJava9Iterate:
    def test_bounded_iterate(self):
        out = Stream.iterate(1, lambda x: x < 100, lambda x: x * 3).to_list()
        assert out == [1, 3, 9, 27, 81]

    def test_bounded_iterate_empty(self):
        assert Stream.iterate(5, lambda x: x < 0, lambda x: x + 1).to_list() == []

    def test_unbounded_still_works(self):
        assert Stream.iterate(0, lambda x: x + 2).limit(4).to_list() == [0, 2, 4, 6]


class TestSmallFactories:
    def test_range_closed(self):
        assert Stream.range_closed(1, 4).to_list() == [1, 2, 3, 4]

    def test_of_nullable(self):
        assert Stream.of_nullable(7).to_list() == [7]
        assert Stream.of_nullable(None).to_list() == []


class TestStreamSpliterator:
    def test_source_passthrough_without_ops(self):
        from repro.streams import Characteristics, ListSpliterator

        s = Stream(ListSpliterator([1, 2, 3, 4]))
        spliterator = s.spliterator()
        assert isinstance(spliterator, ListSpliterator)
        assert spliterator.has_characteristics(Characteristics.POWER2)

    def test_wrapped_pipeline_output(self):
        out = []
        Stream.range(0, 6).map(lambda x: x * 10).spliterator().for_each_remaining(
            out.append
        )
        assert out == [0, 10, 20, 30, 40, 50]

    def test_consumes_stream(self):
        from repro.common import IllegalStateError

        s = Stream.of_items(1, 2)
        s.spliterator()
        with pytest.raises(IllegalStateError):
            s.to_list()

    def test_splittable_downstream(self):
        spliterator = Stream.range(0, 5000).filter(lambda x: x % 2 == 0).spliterator()
        prefix = spliterator.try_split()
        out = []
        if prefix is not None:
            prefix.for_each_remaining(out.append)
        spliterator.for_each_remaining(out.append)
        assert out == list(range(0, 5000, 2))


class TestCollectingAndThen:
    def test_post_transform(self):
        out = Stream.range(0, 5).collect(
            Collectors.collecting_and_then(Collectors.to_list(), len)
        )
        assert out == 5

    def test_parallel(self):
        out = (
            Stream.range(0, 100)
            .parallel()
            .collect(Collectors.collecting_and_then(Collectors.to_list(), sum))
        )
        assert out == 4950

    def test_to_tuple(self):
        out = Stream.of_items(1, 2, 3).collect(Collectors.to_tuple())
        assert out == (1, 2, 3)
        assert isinstance(out, tuple)

    def test_to_frozenset(self):
        out = Stream.of_items(1, 2, 1).parallel().collect(Collectors.to_frozenset())
        assert out == frozenset({1, 2})
        assert isinstance(out, frozenset)
