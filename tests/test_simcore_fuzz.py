"""Scheduler fuzzing: random (non-series-parallel) DAGs.

The DC builder only produces series-parallel shapes; the scheduler itself
must be correct for *any* DAG (the MPI layer and future adapters build
other shapes).  These tests generate random topologically-ordered DAGs
and check the full invariant set.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import SimMachine, greedy_bound_check
from repro.simcore.dag import Strand, StrandDag
from repro.simcore.metrics import trace_is_consistent


def random_dag(seed: int, n_strands: int, max_deps: int = 3) -> StrandDag:
    """A random DAG: strand i may depend on any earlier strands.

    ``forks`` edges are a subset of dependence edges (a strand can only
    fork work that depends on it), keeping the machine's invariants.
    """
    rng = random.Random(seed)
    dag = StrandDag()
    for i in range(n_strands):
        kind = rng.choice(["split", "leaf", "combine"])
        strand = dag.new_strand(kind, rng.uniform(0.5, 20.0), size=i)
        if i > 0:
            k = rng.randint(0, min(max_deps, i))
            strand.deps = sorted(rng.sample(range(i), k))
    # Ensure a single root: strand 0 has no deps; every other strand with
    # no deps gets attached to strand 0 so the bootstrap reaches them.
    for strand in dag.strands[1:]:
        if not strand.deps:
            strand.deps = [0]
    # Fork edges: each strand forks a random subset of its dependents that
    # depend *only* on it (so readiness coincides with the fork moment).
    dependents = {s.sid: [] for s in dag.strands}
    for strand in dag.strands:
        for dep in strand.deps:
            dependents[dep].append(strand.sid)
    for strand in dag.strands:
        sole = [
            d for d in dependents[strand.sid]
            if dag.strands[d].deps == [strand.sid]
        ]
        strand.forks = sole[: rng.randint(0, len(sole))]
    dag.root = 0
    dag.sink = n_strands - 1
    return dag


class TestRandomDags:
    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 12))
    def test_all_strands_execute_exactly_once(self, seed, n, workers):
        dag = random_dag(seed, n)
        result = SimMachine(workers).run(dag)
        executed = sorted(t.sid for t in result.trace)
        assert executed == list(range(n))

    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 12))
    def test_dependencies_respected(self, seed, n, workers):
        dag = random_dag(seed, n)
        result = SimMachine(workers).run(dag)
        end_of = {t.sid: t.end for t in result.trace}
        start_of = {t.sid: t.start for t in result.trace}
        for strand in dag.strands:
            for dep in strand.deps:
                assert start_of[strand.sid] >= end_of[dep] - 1e-9

    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 12))
    def test_work_span_laws(self, seed, n, workers):
        dag = random_dag(seed, n)
        result = SimMachine(workers).run(dag)
        report = greedy_bound_check(result)
        assert report.work_law_ok and report.span_law_ok, report

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 10_000), st.integers(1, 50), st.integers(1, 8))
    def test_trace_no_worker_overlap(self, seed, n, workers):
        dag = random_dag(seed, n)
        result = SimMachine(workers).run(dag)
        assert trace_is_consistent(result)

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 10_000), st.integers(1, 50))
    def test_determinism(self, seed, n):
        a = SimMachine(4).run(random_dag(seed, n))
        b = SimMachine(4).run(random_dag(seed, n))
        assert a.makespan == b.makespan
        assert [(t.worker, t.sid, t.start) for t in a.trace] == [
            (t.worker, t.sid, t.start) for t in b.trace
        ]

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000), st.integers(2, 50))
    def test_more_workers_never_hurt_much(self, seed, n):
        # Not a theorem for work stealing in general, but with zero steal
        # latency and greedy acquisition, P+k workers can't be slower than
        # the greedy bound of P workers.
        dag1 = random_dag(seed, n)
        dag8 = random_dag(seed, n)
        t1 = SimMachine(1).run(dag1)
        t8 = SimMachine(8).run(dag8)
        assert t8.makespan <= t1.total_work / 1 + 1e-9  # never above T1
        assert t8.makespan + 1e-9 >= t8.critical_path


class TestChainAndFanDags:
    def test_pure_chain_no_parallelism(self):
        dag = StrandDag()
        prev = None
        for i in range(20):
            s = dag.new_strand("leaf", 2.0, i)
            if prev is not None:
                s.deps = [prev]
            prev = s.sid
        dag.root, dag.sink = 0, prev
        result = SimMachine(8).run(dag)
        assert result.makespan == pytest.approx(40.0)
        assert result.critical_path == pytest.approx(40.0)

    def test_pure_fan_full_parallelism(self):
        dag = StrandDag()
        root = dag.new_strand("split", 1.0, 0)
        for i in range(8):
            child = dag.new_strand("leaf", 10.0, i)
            child.deps = [root.sid]
            root.forks.append(child.sid)
        dag.root, dag.sink = 0, None
        result = SimMachine(8).run(dag)
        # 1 unit of root + 10 units of leaves, perfectly spread.
        assert result.makespan == pytest.approx(11.0)
        assert result.steals >= 7  # other workers must steal their leaf
