"""Tests for the vectorized (numpy bulk-leaf) collectors."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core.vectorized import (
    ArrayBox,
    VectorizedFftCollector,
    VectorizedMapCollector,
    VectorizedPolynomialValue,
    VectorizedReduceCollector,
    vectorized_fft,
    vectorized_polynomial_value,
)
from repro.core.power_collector import power_collect
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="vec-test")
    yield p
    p.shutdown()


class TestArrayBox:
    def test_tie_all(self):
        a = ArrayBox(np.array([1, 2]))
        b = ArrayBox(np.array([3, 4]))
        np.testing.assert_array_equal(a.tie_all(b).data, [1, 2, 3, 4])

    def test_zip_all(self):
        a = ArrayBox(np.array([1, 3]))
        b = ArrayBox(np.array([2, 4]))
        np.testing.assert_array_equal(a.zip_all(b).data, [1, 2, 3, 4])

    def test_zip_all_dissimilar(self):
        from repro.common import NotSimilarError

        with pytest.raises(NotSimilarError):
            ArrayBox(np.array([1])).zip_all(ArrayBox(np.array([1, 2])))

    def test_zip_promotes_dtype(self):
        a = ArrayBox(np.array([1, 2], dtype=np.int64))
        b = ArrayBox(np.array([0.5, 1.5]))
        assert a.zip_all(b).data.dtype == np.float64


class TestVectorizedMap:
    @pytest.mark.parametrize("operator", ["tie", "zip"])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_numpy(self, operator, parallel, pool):
        data = np.arange(128, dtype=np.float64)
        out = power_collect(
            VectorizedMapCollector(np.sqrt, operator), data, parallel, pool
        )
        np.testing.assert_allclose(out, np.sqrt(data))

    @pytest.mark.parametrize("target", [1, 4, 32])
    def test_any_leaf_size(self, target, pool):
        data = np.arange(64, dtype=np.float64)
        out = power_collect(
            VectorizedMapCollector(lambda c: c * 2, "zip"), data, pool=pool,
            target_size=target,
        )
        np.testing.assert_array_equal(out, data * 2)

    def test_bad_operator(self):
        with pytest.raises(IllegalArgumentError):
            VectorizedMapCollector(np.abs, "bogus")

    def test_agrees_with_scalar_collector(self, pool):
        from repro.core import PowerMapCollector

        data = list(range(64))
        scalar = power_collect(
            PowerMapCollector(lambda x: x * x, "tie"), data, pool=pool
        )
        vector = power_collect(
            VectorizedMapCollector(lambda c: c * c, "tie"),
            np.array(data, dtype=np.float64), pool=pool,
        )
        np.testing.assert_allclose(vector, scalar)


class TestVectorizedReduce:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_sum(self, parallel, pool):
        data = np.arange(256, dtype=np.float64)
        out = power_collect(VectorizedReduceCollector(np.add), data, parallel, pool)
        assert out == pytest.approx(data.sum())

    def test_maximum(self, pool):
        rng = np.random.default_rng(3)
        data = rng.standard_normal(128)
        out = power_collect(VectorizedReduceCollector(np.maximum), data, pool=pool)
        assert out == pytest.approx(data.max())

    def test_empty_chunk_semantics(self):
        # A reduce over a singleton input works (single chunk of size 1).
        out = power_collect(
            VectorizedReduceCollector(np.add), np.array([7.0]), parallel=False
        )
        assert out == 7.0


class TestVectorizedPolynomial:
    @pytest.mark.parametrize("parallel", [False, True])
    @pytest.mark.parametrize("size_log", [4, 8, 12])
    def test_matches_numpy(self, parallel, size_log, pool):
        rng = random.Random(size_log)
        coeffs = [rng.uniform(-1, 1) for _ in range(2**size_log)]
        out = vectorized_polynomial_value(coeffs, 0.998, parallel=parallel, pool=pool)
        assert out == pytest.approx(np.polyval(coeffs, 0.998), rel=1e-9)

    @pytest.mark.parametrize("target", [1, 4, 64])
    def test_any_leaf_size(self, target, pool):
        rng = random.Random(44)
        coeffs = [rng.uniform(-1, 1) for _ in range(256)]
        out = vectorized_polynomial_value(coeffs, 0.93, pool=pool, target_size=target)
        assert out == pytest.approx(np.polyval(coeffs, 0.93), rel=1e-9)

    def test_agreement_with_scalar_and_tupled(self, pool):
        from repro.core import polynomial_value, polynomial_value_tupled

        rng = random.Random(45)
        coeffs = [rng.uniform(-1, 1) for _ in range(512)]
        vec = vectorized_polynomial_value(coeffs, 0.97, pool=pool)
        assert vec == pytest.approx(polynomial_value(coeffs, 0.97, pool=pool), rel=1e-9)
        assert vec == pytest.approx(
            polynomial_value_tupled(coeffs, 0.97, pool=pool), rel=1e-9
        )

    def test_powers_cache_reused(self, pool):
        collector = VectorizedPolynomialValue(0.9)
        power_collect(collector, np.ones(256), pool=pool, target_size=16)
        # uniform leaves → exactly one (incr, m) key
        assert len(collector._powers_cache) == 1

    @settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(0, 6).flatmap(
            lambda k: st.lists(
                st.floats(-1, 1, allow_nan=False), min_size=2**k, max_size=2**k
            )
        ),
        st.floats(-1.25, 1.25, allow_nan=False),
    )
    def test_property(self, coeffs, x):
        out = vectorized_polynomial_value(coeffs, x, parallel=False)
        assert out == pytest.approx(np.polyval(coeffs, x), rel=1e-6, abs=1e-6)


class TestVectorizedFft:
    @pytest.mark.parametrize("parallel", [False, True])
    @pytest.mark.parametrize("n_log", [0, 4, 10])
    def test_matches_numpy(self, parallel, n_log, pool):
        rng = np.random.default_rng(n_log)
        data = rng.standard_normal(2**n_log) + 1j * rng.standard_normal(2**n_log)
        out = vectorized_fft(data, parallel=parallel, pool=pool)
        np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("target", [1, 8, 64])
    def test_any_leaf_size(self, target, pool):
        rng = np.random.default_rng(9)
        data = rng.standard_normal(256) * 1j
        out = vectorized_fft(data, pool=pool, target_size=target)
        np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-9, atol=1e-9)

    def test_agrees_with_scalar_collector(self, pool):
        from repro.core import fft

        rng = np.random.default_rng(10)
        data = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        np.testing.assert_allclose(
            vectorized_fft(data, pool=pool),
            fft(list(data), pool=pool),
            rtol=1e-9, atol=1e-9,
        )


class TestVectorizedActuallyFaster:
    def test_vectorized_polynomial_beats_scalar_wall_clock(self):
        """The point of vectorization: real speedup on this host, no GIL
        caveat — the heavy math leaves the interpreter loop."""
        import time

        from repro.core import polynomial_value

        n = 2**16
        rng = np.random.default_rng(1)
        coeffs = rng.uniform(-1, 1, n)

        start = time.perf_counter()
        scalar = polynomial_value(list(coeffs), 0.9999, parallel=False)
        scalar_time = time.perf_counter() - start

        start = time.perf_counter()
        vector = vectorized_polynomial_value(coeffs, 0.9999, parallel=False)
        vector_time = time.perf_counter() - start

        assert vector == pytest.approx(scalar, rel=1e-6)
        assert vector_time < scalar_time, (
            f"vectorized ({vector_time:.4f}s) should beat scalar "
            f"({scalar_time:.4f}s)"
        )
