"""Tests for the simulated parallel machine: DAGs, scheduling, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.simcore import (
    CostModel,
    SimMachine,
    build_dc_dag,
    greedy_bound_check,
    sequential_time,
    simulate_power_function,
    speedup,
)
from repro.simcore.adapters import default_threshold, profile_model
from repro.simcore.costmodel import polynomial_cost_model
from repro.simcore.dag import StrandDag
from repro.simcore.metrics import trace_is_consistent


class TestCostModel:
    def test_leaf_cost_linear(self):
        m = CostModel(work_per_element=2.0)
        assert m.leaf_cost(10) == 20.0

    def test_access_factor_identity_without_penalty(self):
        m = CostModel()
        assert m.access_factor(64) == 1.0

    def test_access_factor_grows_with_stride(self):
        m = CostModel(stride_penalty=0.2)
        assert m.access_factor(1) == 1.0
        assert m.access_factor(2) > 1.0
        assert m.access_factor(8) > m.access_factor(2)

    def test_access_factor_saturates(self):
        m = CostModel(stride_penalty=0.2)
        assert m.access_factor(2**6) == m.access_factor(2**20)

    def test_sequential_anomaly(self):
        m = CostModel(seq_work_per_element=1.0, sequential_anomaly={8: 0.5})
        assert m.sequential_cost(8) == 4.0
        assert m.sequential_cost(16) == 16.0

    def test_descend_cost(self):
        m = CostModel(split_overhead=1, fork_overhead=1, descend_per_element=2.0)
        assert m.split_cost(10) == 2 + 20

    def test_to_ms(self):
        m = CostModel(unit_ms=0.5)
        assert m.to_ms(10) == 5.0

    def test_polynomial_model_anomaly_toggle(self):
        assert 2**24 in polynomial_cost_model(True).sequential_anomaly
        assert not polynomial_cost_model(False).sequential_anomaly


class TestDagBuilder:
    def test_singleton_is_one_leaf(self):
        dag = build_dc_dag(1, 1, CostModel())
        assert len(dag.strands) == 1
        assert dag.strands[0].kind == "leaf"

    def test_size_4_threshold_1_shape(self):
        dag = build_dc_dag(4, 1, CostModel())
        kinds = [s.kind for s in dag.strands]
        assert kinds.count("leaf") == 4
        assert kinds.count("split") == 3
        assert kinds.count("combine") == 3

    def test_threshold_stops_decomposition(self):
        dag = build_dc_dag(64, 16, CostModel())
        assert dag.leaf_count() == 4

    def test_topological_and_fork_valid(self):
        dag = build_dc_dag(32, 2, CostModel())
        dag.validate()

    def test_work_accounts_every_element(self):
        m = CostModel(work_per_element=1.0, split_overhead=0, fork_overhead=0,
                      combine_overhead=0)
        dag = build_dc_dag(64, 8, m)
        leaf_work = sum(s.cost for s in dag.strands if s.kind == "leaf")
        assert leaf_work == 64.0

    def test_zip_operator_strides_charged(self):
        m = CostModel(stride_penalty=0.3)
        tie_dag = build_dc_dag(64, 4, m, operator="tie")
        zip_dag = build_dc_dag(64, 4, m, operator="zip")
        assert zip_dag.total_work() > tie_dag.total_work()

    def test_critical_path_at_most_work(self):
        dag = build_dc_dag(128, 4, CostModel())
        assert dag.critical_path() <= dag.total_work()

    @pytest.mark.parametrize("bad", [(0, 1), (4, 0)])
    def test_validation(self, bad):
        n, t = bad
        with pytest.raises(IllegalArgumentError):
            build_dc_dag(n, t, CostModel())

    def test_unknown_operator(self):
        with pytest.raises(IllegalArgumentError):
            build_dc_dag(4, 1, CostModel(), operator="bogus")


class TestSimMachine:
    def test_single_worker_time_is_total_work(self):
        dag = build_dc_dag(64, 4, CostModel())
        result = SimMachine(1).run(dag)
        assert result.makespan == pytest.approx(dag.total_work())

    def test_two_workers_faster(self):
        dag = build_dc_dag(2**14, 2**9, CostModel())
        t1 = SimMachine(1).run(dag).makespan
        t2 = SimMachine(2).run(dag).makespan
        assert t2 < t1
        assert t2 >= t1 / 2

    def test_determinism(self):
        dag = build_dc_dag(2**12, 2**6, CostModel())
        a = SimMachine(4).run(dag)
        b = SimMachine(4).run(build_dc_dag(2**12, 2**6, CostModel()))
        assert a.makespan == b.makespan
        assert a.steals == b.steals
        assert [(t.worker, t.sid) for t in a.trace] == [
            (t.worker, t.sid) for t in b.trace
        ]

    def test_trace_consistent(self):
        dag = build_dc_dag(2**10, 2**4, CostModel())
        result = SimMachine(8).run(dag)
        assert trace_is_consistent(result)

    def test_all_strands_executed_once(self):
        dag = build_dc_dag(2**8, 2**3, CostModel())
        result = SimMachine(3).run(dag)
        executed = sorted(t.sid for t in result.trace)
        assert executed == list(range(len(dag.strands)))

    def test_steals_happen_with_many_workers(self):
        dag = build_dc_dag(2**14, 2**8, CostModel())
        assert SimMachine(8).run(dag).steals > 0

    def test_no_steals_with_one_worker(self):
        dag = build_dc_dag(2**10, 2**5, CostModel())
        assert SimMachine(1).run(dag).steals == 0

    def test_steal_latency_slows(self):
        dag1 = build_dc_dag(2**12, 2**6, CostModel())
        dag2 = build_dc_dag(2**12, 2**6, CostModel())
        fast = SimMachine(8, steal_latency=0.0).run(dag1).makespan
        slow = SimMachine(8, steal_latency=500.0).run(dag2).makespan
        assert slow > fast

    def test_invalid_args(self):
        with pytest.raises(IllegalArgumentError):
            SimMachine(0)
        with pytest.raises(IllegalArgumentError):
            SimMachine(1, steal_latency=-1)

    def test_empty_dag(self):
        assert SimMachine(2).run(StrandDag()).makespan == 0.0

    def test_utilization_bounds(self):
        dag = build_dc_dag(2**16, 2**10, CostModel())
        result = SimMachine(8).run(dag)
        assert 0.0 < result.utilization <= 1.0

    def test_busy_time_sums_to_work(self):
        dag = build_dc_dag(2**10, 2**5, CostModel())
        result = SimMachine(4).run(dag)
        total_busy = sum(result.busy_time(w) for w in range(4))
        assert total_busy == pytest.approx(dag.total_work())


class TestSchedulingBounds:
    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(4, 14),  # log2 n
        st.integers(0, 8),  # log2 threshold
        st.integers(1, 16),  # workers
    )
    def test_work_span_greedy_laws(self, log_n, log_t, workers):
        n, t = 2**log_n, 2**log_t
        dag = build_dc_dag(n, min(t, n), CostModel())
        result = SimMachine(workers, steal_latency=0.0).run(dag)
        report = greedy_bound_check(result)
        assert report.work_law_ok, report
        assert report.span_law_ok, report
        assert report.greedy_ok, report

    def test_speedup_helper(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestAdapters:
    def test_default_threshold_rule(self):
        assert default_threshold(2**20, 8) == 2**20 // 32
        assert default_threshold(3, 8) == 1

    def test_profiles_resolve(self):
        for name in ("map", "map_zip", "reduce", "polynomial", "fft", "descend"):
            model, operator = profile_model(name)
            assert operator in ("tie", "zip")
            assert model.work_per_element > 0

    def test_unknown_profile(self):
        with pytest.raises(IllegalArgumentError):
            profile_model("nope")

    def test_simulate_polynomial_speedup_near_workers(self):
        # The paper's headline: speedup close to 8 on 8 cores for large n.
        n = 2**22
        result = simulate_power_function(n, workers=8, function="polynomial")
        s = speedup(sequential_time(n, "polynomial"), result.makespan)
        assert 5.0 < s <= 8.0

    def test_small_inputs_poor_speedup(self):
        n = 2**6
        result = simulate_power_function(n, workers=8, function="polynomial")
        s = speedup(sequential_time(n, "polynomial"), result.makespan)
        assert s < 2.0

    def test_anomaly_reduces_measured_speedup(self):
        n = 2**24
        with_anomaly = polynomial_cost_model(True)
        without = polynomial_cost_model(False)
        r = simulate_power_function(n, 8, "polynomial", model=with_anomaly)
        s_anom = speedup(sequential_time(n, "polynomial", with_anomaly), r.makespan)
        r2 = simulate_power_function(n, 8, "polynomial", model=without)
        s_clean = speedup(sequential_time(n, "polynomial", without), r2.makespan)
        assert s_anom < s_clean / 2  # the 3x anomaly shows as a dropout

    def test_more_workers_not_slower(self):
        n = 2**18
        times = [
            simulate_power_function(n, w, "reduce").makespan for w in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)
