"""Unit tests for repro.common.checks and the error hierarchy."""

import pytest

from repro.common import (
    IllegalArgumentError,
    IllegalStateError,
    NotPowerOfTwoError,
    NotSimilarError,
    ReproError,
    check_index,
    check_not_none,
    check_positive,
    check_power_of_two,
    check_range,
)


class TestCheckNotNone:
    def test_passes_through_value(self):
        assert check_not_none(42, "x") == 42
        assert check_not_none("", "x") == ""

    def test_rejects_none_with_name(self):
        with pytest.raises(IllegalArgumentError, match="myarg"):
            check_not_none(None, "myarg")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1, "n") == 1

    @pytest.mark.parametrize("n", [0, -1, -100])
    def test_rejects_nonpositive(self, n):
        with pytest.raises(IllegalArgumentError):
            check_positive(n, "n")


class TestCheckPowerOfTwo:
    def test_accepts(self):
        assert check_power_of_two(8) == 8

    def test_rejects_with_specific_error(self):
        with pytest.raises(NotPowerOfTwoError) as exc:
            check_power_of_two(6, "count")
        assert exc.value.length == 6
        assert "count" in str(exc.value)


class TestCheckRange:
    def test_accepts_valid(self):
        check_range(0, 0, 0)
        check_range(2, 5, 5)

    @pytest.mark.parametrize("lo,hi,size", [(-1, 2, 4), (3, 2, 4), (0, 5, 4)])
    def test_rejects_invalid(self, lo, hi, size):
        with pytest.raises(IllegalArgumentError):
            check_range(lo, hi, size)


class TestCheckIndex:
    def test_accepts(self):
        assert check_index(3, 4) == 3

    @pytest.mark.parametrize("i", [-1, 4, 100])
    def test_rejects(self, i):
        with pytest.raises(IllegalArgumentError):
            check_index(i, 4)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (
            IllegalArgumentError,
            NotPowerOfTwoError,
        ):
            assert issubclass(exc_type, ReproError)
        assert issubclass(IllegalStateError, ReproError)

    def test_illegal_argument_is_value_error(self):
        assert issubclass(IllegalArgumentError, ValueError)

    def test_illegal_state_is_runtime_error(self):
        assert issubclass(IllegalStateError, RuntimeError)

    def test_not_similar_records_lengths(self):
        err = NotSimilarError(4, 8)
        assert err.left_len == 4
        assert err.right_len == 8
        assert issubclass(NotSimilarError, IllegalArgumentError)
