"""Tests for quad-tree GridFunction templates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forkjoin import ForkJoinPool
from repro.jplf.grid_function import (
    GridForkJoinExecutor,
    GridMax,
    GridSum,
    GridTrace,
)
from repro.powerlist.grid import Grid


def square_grids(max_log=3):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(
            st.lists(st.integers(-100, 100), min_size=2**k, max_size=2**k),
            min_size=2**k,
            max_size=2**k,
        )
    ).map(Grid.from_rows)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="gridfn")
    yield p
    p.shutdown()


class TestSequentialCompute:
    @given(square_grids())
    def test_sum_matches_numpy(self, g):
        assert GridSum(g).compute() == np.array(g.to_rows()).sum()

    @given(square_grids())
    def test_max_matches_numpy(self, g):
        assert GridMax(g).compute() == np.array(g.to_rows()).max()

    @given(square_grids())
    def test_trace_matches_numpy(self, g):
        assert GridTrace(g).compute() == np.trace(np.array(g.to_rows()))

    def test_singleton(self):
        g = Grid.from_rows([[7]])
        assert GridSum(g).compute() == 7
        assert GridTrace(g).compute() == 7

    def test_rectangular_leaf(self):
        # 1×4: not quad-splittable; the leaf case handles it.
        g = Grid.from_rows([[1, 2, 3, 4]])
        assert GridSum(g).compute() == 10
        assert GridMax(g).compute() == 4


class TestForkJoinExecution:
    @pytest.mark.parametrize("threshold", [None, 1, 4, 64])
    def test_sum(self, threshold, pool):
        rng = np.random.default_rng(1)
        g = Grid.from_rows(rng.integers(-9, 9, (16, 16)).tolist())
        out = GridForkJoinExecutor(pool, threshold=threshold).execute(GridSum(g))
        assert out == np.array(g.to_rows()).sum()

    def test_max(self, pool):
        rng = np.random.default_rng(2)
        g = Grid.from_rows(rng.integers(-999, 999, (32, 32)).tolist())
        out = GridForkJoinExecutor(pool).execute(GridMax(g))
        assert out == np.array(g.to_rows()).max()

    def test_trace(self, pool):
        rng = np.random.default_rng(3)
        g = Grid.from_rows(rng.integers(-9, 9, (16, 16)).tolist())
        out = GridForkJoinExecutor(pool, threshold=4).execute(GridTrace(g))
        assert out == np.trace(np.array(g.to_rows()))

    def test_agrees_with_sequential(self, pool):
        rng = np.random.default_rng(4)
        g = Grid.from_rows(rng.integers(-9, 9, (8, 8)).tolist())
        assert GridForkJoinExecutor(pool).execute(GridSum(g)) == GridSum(g).compute()


class TestQuadDecompositionDiscipline:
    def test_quadrants_are_views(self):
        g = Grid.filled(1, 8, 8)
        fn = GridSum(g)
        subs = [fn.create_subfunction(q) for q in g.quad_split()]
        assert all(sub.data.storage is g.storage for sub in subs)

    def test_splittable_predicate(self):
        assert GridSum(Grid.filled(0, 2, 2)).splittable()
        assert not GridSum(Grid.filled(0, 1, 4)).splittable()
        assert not GridSum(Grid.filled(0, 4, 1)).splittable()
