"""Tests for the numeric stream specialization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams import Optional, Stream
from repro.streams.numeric import NumericStream


class TestFactories:
    def test_of(self):
        assert NumericStream.of([1, 2, 3]).sum() == 6

    def test_range(self):
        assert NumericStream.range(0, 5).sum() == 10

    def test_range_closed(self):
        assert NumericStream.range_closed(1, 5).sum() == 15


class TestIntermediates:
    def test_map_filter_chain(self):
        out = (
            NumericStream.range(0, 10)
            .map(lambda x: x * 2)
            .filter(lambda x: x > 10)
            .to_array()
        )
        np.testing.assert_array_equal(out, [12, 14, 16, 18])

    def test_limit_skip(self):
        assert NumericStream.range(0, 100).skip(10).limit(3).sum() == 33

    def test_distinct_sorted(self):
        out = NumericStream.of([3, 1, 3, 2]).distinct().sorted().to_array()
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_parallel(self):
        assert NumericStream.range(0, 10_000).parallel().sum() == 49_995_000


class TestTerminals:
    def test_min_max(self):
        s = NumericStream.of([5, 2, 9])
        assert s.min() == Optional.of(2)
        assert NumericStream.of([5, 2, 9]).max() == Optional.of(9)

    def test_count(self):
        assert NumericStream.range(0, 7).count() == 7

    def test_average(self):
        assert NumericStream.of([2, 4, 6]).average() == Optional.of(4.0)

    def test_average_empty(self):
        assert NumericStream.of([]).average() == Optional.empty()

    def test_summary_statistics(self):
        stats = NumericStream.range(1, 11).summary_statistics()
        assert stats.count == 10
        assert stats.total == 55
        assert stats.minimum == 1
        assert stats.maximum == 10
        assert stats.mean == pytest.approx(5.5)

    def test_to_array_dtype(self):
        out = NumericStream.of([1, 2]).to_array(dtype=np.int64)
        assert out.dtype == np.int64

    def test_iteration(self):
        assert list(NumericStream.range(0, 3)) == [0, 1, 2]


class TestConversions:
    def test_boxed_returns_stream(self):
        boxed = NumericStream.range(0, 3).boxed()
        assert isinstance(boxed, Stream)
        assert boxed.to_list() == [0, 1, 2]

    def test_map_to_obj(self):
        out = NumericStream.range(0, 3).map_to_obj(str).to_list()
        assert out == ["0", "1", "2"]

    def test_as_float_stream(self):
        out = NumericStream.of([1, 2]).as_float_stream().to_array()
        assert out.dtype == np.float64

    @given(st.lists(st.integers(-100, 100), max_size=50))
    def test_summary_matches_numpy(self, xs):
        stats = NumericStream.of(xs).summary_statistics()
        assert stats.count == len(xs)
        if xs:
            assert stats.total == sum(xs)
            assert stats.minimum == min(xs)
            assert stats.maximum == max(xs)
