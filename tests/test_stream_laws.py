"""Algebraic laws of the stream pipeline.

The paper describes streams as *monads* ("a structure that represents
computations defined as sequences of steps").  These property tests pin
the corresponding laws on our implementation: functor laws for ``map``,
monad laws for ``flat_map``, predicate algebra for ``filter``, and the
homomorphism law connecting ``reduce`` with concatenation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import Stream, stream_of

ints = st.lists(st.integers(-100, 100), max_size=60)


def f(x):
    return x * 2 + 1


def g(x):
    return x * x - 3


class TestFunctorLaws:
    @given(ints)
    def test_map_identity(self, xs):
        assert stream_of(xs).map(lambda x: x).to_list() == xs

    @given(ints)
    def test_map_composition(self, xs):
        composed = stream_of(xs).map(lambda x: f(g(x))).to_list()
        chained = stream_of(xs).map(g).map(f).to_list()
        assert composed == chained


class TestMonadLaws:
    """flat_map is monadic bind; Stream.of_items is return."""

    @given(st.integers(-50, 50))
    def test_left_identity(self, x):
        # return x >>= k  ==  k x
        k = lambda v: [v, v + 1]
        assert Stream.of_items(x).flat_map(k).to_list() == list(k(x))

    @given(ints)
    def test_right_identity(self, xs):
        # m >>= return  ==  m
        assert stream_of(xs).flat_map(lambda v: [v]).to_list() == xs

    @given(st.lists(st.integers(-20, 20), max_size=30))
    def test_associativity(self, xs):
        # (m >>= k) >>= h  ==  m >>= (λv. k v >>= h)
        k = lambda v: [v, -v]
        h = lambda v: [v * 2]
        lhs = stream_of(xs).flat_map(k).flat_map(h).to_list()
        rhs = stream_of(xs).flat_map(
            lambda v: [w2 for w in k(v) for w2 in h(w)]
        ).to_list()
        assert lhs == rhs


class TestFilterAlgebra:
    @given(ints)
    def test_filter_conjunction(self, xs):
        p = lambda x: x % 2 == 0
        q = lambda x: x > 0
        both = stream_of(xs).filter(lambda x: p(x) and q(x)).to_list()
        chained = stream_of(xs).filter(p).filter(q).to_list()
        assert both == chained

    @given(ints)
    def test_filter_commutes_in_chain(self, xs):
        p = lambda x: x % 3 == 0
        q = lambda x: x < 50
        assert (
            stream_of(xs).filter(p).filter(q).to_list()
            == stream_of(xs).filter(q).filter(p).to_list()
        )

    @given(ints)
    def test_map_filter_exchange(self, xs):
        # filter(p) ∘ map(f)  ==  map(f) ∘ filter(p ∘ f)
        p = lambda x: x % 2 == 0
        lhs = stream_of(xs).map(f).filter(p).to_list()
        rhs = stream_of(xs).filter(lambda x: p(f(x))).map(f).to_list()
        assert lhs == rhs


class TestReduceHomomorphism:
    @given(ints, ints)
    def test_reduce_splits_over_concat(self, xs, ys):
        # reduce(xs ++ ys) == reduce(xs) ⊕ reduce(ys) for associative ⊕
        whole = stream_of(xs + ys).reduce(0, lambda a, b: a + b)
        parts = stream_of(xs).reduce(0, lambda a, b: a + b) + stream_of(ys).reduce(
            0, lambda a, b: a + b
        )
        assert whole == parts

    @given(ints)
    def test_count_is_sum_of_ones(self, xs):
        assert stream_of(xs).count() == stream_of(xs).map(lambda _: 1).sum()

    @given(ints)
    def test_parallel_reduce_is_homomorphic_image(self, xs):
        seq = stream_of(xs).reduce(0, lambda a, b: a + b)
        par = stream_of(xs).parallel().reduce(0, lambda a, b: a + b)
        assert seq == par


class TestLimitSkipAlgebra:
    @given(ints, st.integers(0, 30), st.integers(0, 30))
    def test_limit_then_limit(self, xs, m, n):
        assert (
            stream_of(xs).limit(m).limit(n).to_list()
            == stream_of(xs).limit(min(m, n)).to_list()
        )

    @given(ints, st.integers(0, 30), st.integers(0, 30))
    def test_skip_then_skip(self, xs, m, n):
        assert (
            stream_of(xs).skip(m).skip(n).to_list()
            == stream_of(xs).skip(m + n).to_list()
        )

    @given(ints, st.integers(0, 30))
    def test_sorted_idempotent(self, xs, _):
        assert (
            stream_of(xs).sorted().sorted().to_list()
            == stream_of(xs).sorted().to_list()
        )

    @given(ints)
    def test_distinct_idempotent(self, xs):
        once = stream_of(xs).distinct().to_list()
        assert stream_of(once).distinct().to_list() == once
