"""Unit tests for the chunked bulk-execution fast path.

Covers the three layers of the bulk protocol:

* ``Spliterator.next_chunk`` — slice semantics on every stock
  spliterator, zero-copy views on numpy sources, strided slices and
  ``basic_case`` whole-remainder chunks on the specialized power
  spliterators, singleton view chunks on the vectorized mixin;
* ``Sink.accept_chunk`` — the chunk-aware rewrites of the stateless ops
  and the collector chunk accumulators;
* engagement — ``run_pipeline`` picks the chunked traversal exactly when
  the pipeline is eligible, and falls back otherwise, observable through
  ``bulk_stats``.
"""

import numpy as np
import pytest

from repro.forkjoin import ForkJoinPool
from repro.forkjoin.deques import WorkStealingDeque
from repro.streams import (
    ArraySpliterator,
    Collectors,
    EmptySpliterator,
    IteratorSpliterator,
    ListSpliterator,
    RangeSpliterator,
    Stream,
    bulk_execution,
    bulk_execution_enabled,
    bulk_stats,
    set_bulk_execution,
    stream_of,
)
from repro.core.power_spliterators import TieSpliterator, ZipSpliterator
from repro.core.vectorized import VTieSpliterator


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="bulk-test")
    yield p
    p.shutdown()


def drain(spliterator, max_size):
    """Pull chunks until exhaustion; returns the list of chunks."""
    chunks = []
    while True:
        chunk = spliterator.next_chunk(max_size)
        if chunk is None or len(chunk) == 0:
            return chunks
        chunks.append(chunk)


# --------------------------------------------------------------------------- #
# next_chunk on the stock spliterators
# --------------------------------------------------------------------------- #

class TestNextChunk:
    def test_list_spliterator_slices(self):
        sp = ListSpliterator(list(range(10)))
        chunks = drain(sp, 4)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert sp.next_chunk(4) == ()

    def test_list_spliterator_respects_prior_advance(self):
        sp = ListSpliterator([10, 11, 12, 13])
        got = []
        assert sp.try_advance(got.append)
        assert sp.next_chunk(8) == [11, 12, 13]
        assert got == [10]

    def test_array_spliterator_chunk_is_a_view(self):
        arr = np.arange(8)
        sp = ArraySpliterator(arr)
        chunk = sp.next_chunk(8)
        assert isinstance(chunk, np.ndarray)
        assert np.shares_memory(chunk, arr)

    def test_range_spliterator_chunk_is_a_range(self):
        sp = RangeSpliterator(0, 10)
        chunks = drain(sp, 4)
        assert chunks == [range(0, 4), range(4, 8), range(8, 10)]
        assert all(isinstance(c, range) for c in chunks)

    def test_iterator_spliterator_buffers(self):
        sp = IteratorSpliterator(iter(range(7)))
        assert drain(sp, 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_iterator_spliterator_pulls_lazily(self):
        pulled = []

        def gen():
            for i in range(100):
                pulled.append(i)
                yield i

        sp = IteratorSpliterator(gen())
        assert sp.next_chunk(5) == [0, 1, 2, 3, 4]
        assert len(pulled) == 5

    def test_empty_spliterator(self):
        assert len(EmptySpliterator().next_chunk(4)) == 0

    def test_max_size_validated(self):
        with pytest.raises(ValueError):
            IteratorSpliterator(iter([1])).next_chunk(0)

    def test_tie_spliterator_strided_slice(self):
        sp = TieSpliterator(list(range(10)), start=0, count=5, incr=2)
        assert sp.next_chunk(3) == [0, 2, 4]
        assert sp.next_chunk(3) == [6, 8]

    def test_zip_split_then_chunk(self):
        sp = ZipSpliterator(list(range(8)))
        prefix = sp.try_split()
        assert prefix.next_chunk(8) == [0, 2, 4, 6]
        assert sp.next_chunk(8) == [1, 3, 5, 7]

    def test_power2_numpy_chunk_is_strided_view(self):
        arr = np.arange(8)
        sp = TieSpliterator(arr, start=0, count=4, incr=2)
        chunk = sp.next_chunk(4)
        assert np.shares_memory(chunk, arr)
        assert list(chunk) == [0, 2, 4, 6]

    def test_basic_case_leaf_is_indivisible(self):
        """With a connected ``basic_case`` the whole remainder comes back
        as one chunk regardless of max_size — the kernel must see the
        complete sub-view."""

        class FO:
            on_split = None

            @staticmethod
            def basic_case(view, incr):
                return [x * 10 for x in view]

        sp = TieSpliterator(list(range(6)), function_object=FO())
        assert sp.next_chunk(2) == [0, 10, 20, 30, 40, 50]
        assert sp.next_chunk(2) == ()

    def test_vectorized_mixin_singleton_chunk(self):
        arr = np.arange(8, dtype=float)
        sp = VTieSpliterator(arr, start=0, count=4, incr=2)
        chunk = sp.next_chunk(1)
        assert len(chunk) == 1
        view, incr = chunk[0]
        assert incr == 2
        assert np.shares_memory(view, arr)
        assert sp.next_chunk(1) == ()


# --------------------------------------------------------------------------- #
# accept_chunk rewrites and collector chunk accumulators
# --------------------------------------------------------------------------- #

class TestChunkedSemantics:
    DATA = list(range(-20, 20))

    def both(self, build):
        with bulk_execution(True):
            chunked = build()
        with bulk_execution(False):
            element = build()
        return chunked, element

    def test_map_filter_flatmap_parity(self):
        def build():
            return (
                stream_of(self.DATA)
                .map(lambda x: x * 3)
                .filter(lambda x: x % 2 == 0)
                .flat_map(lambda x: [x, -x])
                .to_list()
            )

        chunked, element = self.both(build)
        assert chunked == element

    def test_peek_sees_every_element_in_order(self):
        def build():
            seen = []
            out = stream_of(self.DATA).peek(seen.append).map(lambda x: x).to_list()
            return seen, out

        (seen_c, out_c), (seen_e, out_e) = self.both(build)
        assert seen_c == seen_e == self.DATA
        assert out_c == out_e

    def test_map_multi_parity(self):
        def emit_twice(x, consumer):
            consumer(x)
            consumer(x + 100)

        def build():
            return stream_of(self.DATA).map_multi(emit_twice).to_list()

        chunked, element = self.both(build)
        assert chunked == element

    def test_ufunc_map_on_ndarray_source(self):
        arr = np.arange(64, dtype=np.int64)
        def build():
            return stream_of(arr).map(np.square).to_list()

        chunked, element = self.both(build)
        assert list(chunked) == list(element) == [x * x for x in range(64)]

    def test_non_ufunc_map_on_ndarray_source(self):
        arr = np.arange(8, dtype=np.int64)
        with bulk_execution(True):
            assert stream_of(arr).map(str).to_list() == [str(x) for x in arr]

    @pytest.mark.parametrize("collector,expected", [
        (Collectors.to_list(), list(range(12))),
        (Collectors.to_set(), set(range(12))),
        (Collectors.counting(), 12),
        (Collectors.summing(), sum(range(12))),
        (Collectors.averaging(), sum(range(12)) / 12),
        (Collectors.joining(","), ",".join(map(str, range(12)))),
    ])
    def test_collector_chunk_accumulators(self, collector, expected):
        source = range(12) if not isinstance(expected, str) else map(str, range(12))
        with bulk_execution(True):
            bulk_stats(reset=True)
            result = stream_of(list(source)).collect(collector)
            assert bulk_stats()["chunked"] == 1
        assert result == expected

    def test_reduce_parity(self):
        def build():
            with_id = stream_of(self.DATA).reduce(0, lambda a, b: a + b)
            no_id = stream_of(self.DATA).map(lambda x: x + 1).reduce(lambda a, b: a + b)
            empty = Stream.empty().reduce(lambda a, b: a + b)
            return with_id, no_id.get(), empty.is_present()

        chunked, element = self.both(build)
        assert chunked == element == (sum(self.DATA), sum(self.DATA) + 40, False)

    def test_sum_over_range_stream(self):
        def build():
            return Stream.range(0, 1000).map(lambda x: x * 2).sum()

        chunked, element = self.both(build)
        assert chunked == element == 2 * sum(range(1000))


# --------------------------------------------------------------------------- #
# engagement and fallback
# --------------------------------------------------------------------------- #

class TestEngagement:
    def stats_after(self, run):
        bulk_stats(reset=True)
        run()
        return bulk_stats(reset=True)

    def test_stateless_pipeline_engages(self):
        stats = self.stats_after(
            lambda: stream_of(range(100)).map(lambda x: x + 1).to_list())
        assert stats == {"chunked": 1, "element": 0}

    def test_unfusible_stateful_op_falls_back(self):
        # drop_while has no fused kernel and no chunk rewrite: per-element.
        stats = self.stats_after(
            lambda: stream_of(range(100))
            .drop_while(lambda x: x < 10).to_list())
        assert stats["chunked"] == 0 and stats["element"] >= 1

    def test_sorted_rides_chunked_as_terminal_barrier(self):
        # sorted buffers chunk-at-a-time and flushes at end(): the chain
        # stays on the bulk path now instead of falling back.
        stats = self.stats_after(
            lambda: stream_of(range(100)).sorted(reverse=True).to_list())
        assert stats["chunked"] == 1 and stats["element"] == 0

    def test_fused_limit_rides_chunked(self):
        # limit compiles into a counted kernel that absorbs its own
        # short-circuit, so the chain takes the chunked path.
        stats = self.stats_after(
            lambda: stream_of(range(100)).limit(5).to_list())
        assert stats["chunked"] == 1 and stats["element"] == 0

    def test_raw_short_circuit_falls_back(self):
        # take_while has no counted kernel: still the polled path.
        stats = self.stats_after(
            lambda: stream_of(range(100))
            .take_while(lambda x: x < 5).to_list())
        assert stats["chunked"] == 0 and stats["element"] >= 1

    def test_find_first_never_chunks(self):
        stats = self.stats_after(
            lambda: stream_of(range(100)).map(lambda x: x).find_first())
        assert stats["chunked"] == 0

    def test_disabled_globally(self):
        prev = set_bulk_execution(False)
        try:
            assert not bulk_execution_enabled()
            stats = self.stats_after(
                lambda: stream_of(range(100)).map(lambda x: x + 1).to_list())
            assert stats["chunked"] == 0 and stats["element"] >= 1
        finally:
            set_bulk_execution(prev)
        assert bulk_execution_enabled() == prev

    def test_parallel_leaves_chunk(self, pool):
        stats = self.stats_after(
            lambda: stream_of(list(range(4096)))
            .parallel().with_pool(pool)
            .map(lambda x: x + 1).to_list())
        assert stats["chunked"] >= 1 and stats["element"] == 0

    def test_parallel_stateful_still_correct(self, pool):
        """A stateful op segments parallel evaluation: the stateless
        prefix is still traversed chunked at the leaves, and the barrier
        applies the stateful op afterwards — results must be exact."""
        data = list(range(2048)) * 2
        result = (stream_of(data)
                  .parallel().with_pool(pool)
                  .distinct().to_list())
        assert result == list(range(2048))

    def test_iterator_stays_lazy_under_bulk(self):
        """Stream.iterator() keeps per-element pull semantics even with
        bulk execution enabled — laziness trumps chunking there."""
        seen = []
        it = iter(stream_of(range(100)).peek(seen.append).map(lambda x: x))
        assert next(it) == 0
        assert len(seen) <= 2  # consumed prefix only, not the whole source


# --------------------------------------------------------------------------- #
# deque fast paths (satellite b)
# --------------------------------------------------------------------------- #

class TestDequeFastPaths:
    def test_empty_pop_and_steal(self):
        dq = WorkStealingDeque()
        assert dq.pop() is None
        assert dq.steal() is None
        assert not dq
        assert len(dq) == 0

    def test_order_preserved(self):
        dq = WorkStealingDeque()
        for i in range(3):
            dq.push(i)
        assert bool(dq)
        assert dq.pop() == 2      # owner LIFO
        assert dq.steal() == 0    # thief FIFO
        assert dq.pop() == 1
        assert dq.pop() is None
