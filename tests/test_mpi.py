"""Tests for the simulated-MPI executor."""

import random

import numpy as np
import pytest

from repro.common import IllegalArgumentError
from repro.jplf import JplfMap, JplfPolynomialValue, JplfReduce, JplfSort
from repro.mpi import CommModel, MpiExecutor
from repro.powerlist import PowerList


class TestCommModel:
    def test_message_time_affine(self):
        m = CommModel(alpha=100, beta=2, element_bytes=8)
        assert m.message_time(10) == 120
        assert m.element_message_time(4) == 100 + 2 * 32

    def test_validation(self):
        with pytest.raises(IllegalArgumentError):
            CommModel(alpha=-1)
        with pytest.raises(IllegalArgumentError):
            CommModel(element_bytes=0)


class TestMpiExecutorCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_reduce_exact(self, ranks):
        data = [(i * 31) % 101 for i in range(256)]
        ex = MpiExecutor(ranks=ranks, operator_profile="reduce")
        report = ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b))
        assert report.result == sum(data)

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_polynomial_exact(self, ranks):
        rng = random.Random(9)
        coeffs = [rng.uniform(-1, 1) for _ in range(512)]
        ex = MpiExecutor(ranks=ranks, operator_profile="polynomial")
        report = ex.execute(JplfPolynomialValue(PowerList(coeffs), 0.97))
        assert report.result == pytest.approx(np.polyval(coeffs, 0.97), rel=1e-9)

    def test_map_exact(self):
        data = list(range(128))
        ex = MpiExecutor(ranks=4, operator_profile="map")
        report = ex.execute(JplfMap(PowerList(data), lambda x: x * 3))
        assert report.result == [x * 3 for x in data]

    def test_sort_exact(self):
        rng = random.Random(10)
        data = [rng.randint(0, 999) for _ in range(256)]
        ex = MpiExecutor(ranks=8, operator_profile="map")
        report = ex.execute(JplfSort(PowerList(data)))
        assert report.result == sorted(data)

    def test_ranks_must_be_power_of_two(self):
        with pytest.raises(IllegalArgumentError):
            MpiExecutor(ranks=3)

    def test_threads_validated(self):
        with pytest.raises(IllegalArgumentError):
            MpiExecutor(ranks=2, threads_per_rank=0)

    def test_too_many_ranks_for_input(self):
        ex = MpiExecutor(ranks=8)
        with pytest.raises(IllegalArgumentError):
            ex.execute(JplfReduce(PowerList([1, 2, 3, 4]), max))


class TestMpiExecutorTiming:
    def test_report_fields_consistent(self):
        data = list(range(2**12))
        ex = MpiExecutor(ranks=4, operator_profile="reduce")
        report = ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b))
        assert report.ranks == 4
        assert report.finish_time > 0
        assert report.scatter_time >= 0
        assert report.local_time > 0
        assert report.finish_time >= report.local_time

    def test_scaling_improves_large_input(self):
        # Large input, cheap comms relative to work: more ranks → faster.
        data = list(range(2**18))
        times = []
        for ranks in (1, 2, 4, 8, 16):
            ex = MpiExecutor(
                ranks=ranks,
                operator_profile="reduce",
                comm=CommModel(alpha=1000, beta=0.01),
            )
            times.append(
                ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b)).finish_time
            )
        assert times == sorted(times, reverse=True)

    def test_communication_bound_small_input(self):
        # Small input, expensive comms: 16 ranks is slower than 2.
        data = list(range(2**8))
        def run(ranks):
            ex = MpiExecutor(
                ranks=ranks,
                operator_profile="reduce",
                comm=CommModel(alpha=50_000, beta=1.0),
            )
            return ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b)).finish_time

        assert run(16) > run(2)

    def test_hybrid_threads_help(self):
        data = list(range(2**16))
        def run(threads):
            ex = MpiExecutor(ranks=4, threads_per_rank=threads,
                             operator_profile="reduce")
            return ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b)).finish_time

        assert run(8) < run(1)

    def test_deterministic(self):
        data = list(range(2**12))
        def run():
            ex = MpiExecutor(ranks=8, operator_profile="reduce")
            return ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b)).finish_time

        assert run() == run()

    def test_mpi_beats_single_node_at_scale(self):
        # The paper's Section III claim (AB5): MPI scales beyond one node.
        from repro.simcore import simulate_power_function

        n = 2**20
        single_node = simulate_power_function(n, workers=8, function="reduce").makespan
        ex = MpiExecutor(
            ranks=16, threads_per_rank=8, operator_profile="reduce",
            comm=CommModel(alpha=2000, beta=0.002),
        )
        data = list(range(n))
        distributed = ex.execute(
            JplfReduce(PowerList(data), lambda a, b: a + b)
        ).finish_time
        assert distributed < single_node
