"""Tests for simulate_jplf, vectorized prefix sums, map_multi, and
thread-contention determinism of the shared-state mechanism."""

import itertools
import operator

import numpy as np
import pytest

from repro.core.vectorized import vectorized_prefix_sum
from repro.forkjoin import ForkJoinPool
from repro.jplf import JplfPolynomialValue, JplfReduce
from repro.powerlist import PowerList
from repro.simcore import greedy_bound_check
from repro.simcore.adapters import simulate_jplf
from repro.streams import Stream, stream_of


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="latest")
    yield p
    p.shutdown()


class TestSimulateJplf:
    def test_real_result_virtual_time(self):
        data = list(range(2**12))
        result, sim = simulate_jplf(
            JplfReduce(PowerList(data), operator.add), workers=8, profile="reduce"
        )
        assert result == sum(data)
        assert sim.makespan > 0
        assert greedy_bound_check(sim).all_ok

    def test_uses_function_operator(self):
        coeffs = [0.5] * 256
        result, sim = simulate_jplf(
            JplfPolynomialValue(PowerList(coeffs), 0.9),
            workers=8,
            profile="polynomial",
        )
        assert result == pytest.approx(np.polyval(coeffs, 0.9), rel=1e-9)
        # zip decomposition was simulated: verify the DAG scaled like FIG3.
        assert sim.workers == 8

    def test_more_workers_faster(self):
        data = list(range(2**14))
        times = []
        for workers in (1, 4, 16):
            _, sim = simulate_jplf(
                JplfReduce(PowerList(data), operator.add), workers=workers
            )
            times.append(sim.makespan)
        assert times == sorted(times, reverse=True)


class TestVectorizedPrefixSum:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_cumsum(self, parallel, pool):
        rng = np.random.default_rng(1)
        data = rng.uniform(-1, 1, 256)
        out = vectorized_prefix_sum(data, parallel=parallel, pool=pool)
        np.testing.assert_allclose(out, np.cumsum(data), rtol=1e-12)

    @pytest.mark.parametrize("target", [1, 8, 64])
    def test_any_leaf_size(self, target, pool):
        data = np.arange(128, dtype=np.float64)
        out = vectorized_prefix_sum(data, pool=pool, target_size=target)
        np.testing.assert_allclose(out, np.cumsum(data))

    def test_agrees_with_scalar_collector(self, pool):
        from repro.core import prefix_sum

        data = [float((i * 13) % 7) for i in range(64)]
        np.testing.assert_allclose(
            vectorized_prefix_sum(data, pool=pool),
            prefix_sum(data, pool=pool),
        )

    def test_singleton(self):
        np.testing.assert_array_equal(
            vectorized_prefix_sum([5.0], parallel=False), [5.0]
        )


class TestMapMulti:
    def test_expand(self):
        def dup(x, emit):
            emit(x)
            emit(x * 10)

        assert Stream.of_items(1, 2).map_multi(dup).to_list() == [1, 10, 2, 20]

    def test_filter_like(self):
        def evens_only(x, emit):
            if x % 2 == 0:
                emit(x)

        assert Stream.range(0, 8).map_multi(evens_only).to_list() == [0, 2, 4, 6]

    def test_parallel_matches_sequential(self, pool):
        def explode(x, emit):
            for _ in range(x % 3):
                emit(x)

        data = list(range(200))
        seq = stream_of(data).map_multi(explode).to_list()
        par = stream_of(data).parallel().with_pool(pool).map_multi(explode).to_list()
        assert par == seq

    def test_equivalent_to_flat_map(self):
        data = list(range(50))
        via_multi = stream_of(data).map_multi(
            lambda x, emit: [emit(v) for v in range(x % 4)] and None
        ).to_list()
        via_flat = stream_of(data).flat_map(lambda x: range(x % 4)).to_list()
        assert via_multi == via_flat


class TestSharedStateUnderContention:
    """The paper's PZipSpliterator mechanism must stay deterministic when
    splitting tasks race: 20 repeated parallel runs at singleton leaves
    must all agree with the sequential value."""

    def test_polynomial_repeatable(self, pool):
        from repro.core import polynomial_value

        coeffs = [((i * 29) % 13) / 13 for i in range(1024)]
        expected = polynomial_value(coeffs, 0.98, parallel=False)
        for _ in range(20):
            out = polynomial_value(coeffs, 0.98, pool=pool, target_size=1)
            assert out == pytest.approx(expected, rel=1e-12)

    def test_x_degree_converges_to_same_value(self, pool):
        from repro.core import power_collect
        from repro.core.polynomial import PolynomialValue

        degrees = set()
        for _ in range(10):
            pv = PolynomialValue(1.0)
            power_collect(pv, [1.0] * 256, pool=pool, target_size=1)
            degrees.add(pv.x_degree)
        assert degrees == {256}
