"""Tests for pool observability counters and CSV export."""

import csv
import io

import pytest

from repro.bench.export import export_all, export_series, rows_to_csv
from repro.common import IllegalArgumentError
from repro.forkjoin import ForkJoinPool
from repro.streams import Stream


class TestPoolStats:
    def test_counters_accumulate(self):
        with ForkJoinPool(parallelism=4, name="stats") as pool:
            before = pool.stats()
            Stream.range(0, 50_000).parallel().with_pool(pool).sum()
            after = pool.stats()
            assert after["tasks_executed"] > before["tasks_executed"]
            assert len(after["per_worker"]) == 4

    def test_steals_happen_on_wide_work(self):
        with ForkJoinPool(parallelism=4, name="steals") as pool:
            Stream.range(0, 100_000).parallel().with_pool(pool).with_target_size(
                1000
            ).sum()
            assert pool.stats()["steals"] >= 1

    def test_totals_are_sums(self):
        with ForkJoinPool(parallelism=2, name="sum-check") as pool:
            Stream.range(0, 10_000).parallel().with_pool(pool).count()
            stats = pool.stats()
            assert stats["tasks_executed"] == sum(
                w["executed"] for w in stats["per_worker"]
            )
            assert stats["steals"] == sum(w["stolen"] for w in stats["per_worker"])

    def test_real_steals_qualitatively_match_simulation(self):
        # Both the real pool and the simulator steal a small number of
        # times on a balanced tree: each should be well below leaf count.
        from repro.simcore import CostModel, SimMachine, build_dc_dag

        n, target, workers = 2**14, 2**9, 4
        with ForkJoinPool(parallelism=workers, name="qual") as pool:
            Stream.range(0, n).parallel().with_pool(pool).with_target_size(
                target
            ).sum()
            real_steals = pool.stats()["steals"]
        sim = SimMachine(workers).run(build_dc_dag(n, target, CostModel()))
        leaves = n // target
        assert 0 < sim.steals < leaves
        assert 0 <= real_steals < leaves * 4  # helping joins add a few


class TestCsvExport:
    def test_rows_to_csv(self):
        text = rows_to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed == [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4.5"}]

    def test_empty_rejected(self):
        with pytest.raises(IllegalArgumentError):
            rows_to_csv([])

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(IllegalArgumentError):
            rows_to_csv([{"a": 1}, {"b": 2}])

    def test_export_series(self, tmp_path):
        path = export_series([{"x": 1}], tmp_path / "sub" / "s.csv")
        assert path.exists()
        assert "x" in path.read_text()

    def test_export_all(self, tmp_path):
        paths = export_all(tmp_path)
        assert len(paths) == 6
        names = {p.stem for p in paths}
        assert "fig3_fig4" in names
        fig = next(p for p in paths if p.stem == "fig3_fig4")
        rows = list(csv.DictReader(io.StringIO(fig.read_text())))
        assert len(rows) == 7  # sizes 2^20..2^26
        assert "speedup" in rows[0]
