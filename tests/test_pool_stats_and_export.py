"""Tests for pool observability counters and CSV export."""

import csv
import io

import pytest

from repro.bench.export import export_all, export_series, rows_to_csv
from repro.common import IllegalArgumentError
from repro.forkjoin import ForkJoinPool
from repro.streams import Stream


class TestPoolStats:
    def test_counters_accumulate(self):
        with ForkJoinPool(parallelism=4, name="stats") as pool:
            before = pool.stats()
            Stream.range(0, 50_000).parallel().with_pool(pool).sum()
            after = pool.stats()
            assert after["tasks_executed"] > before["tasks_executed"]
            assert len(after["per_worker"]) == 4

    def test_steals_happen_on_wide_work(self):
        with ForkJoinPool(parallelism=4, name="steals") as pool:
            Stream.range(0, 100_000).parallel().with_pool(pool).with_target_size(
                1000
            ).sum()
            assert pool.stats()["steals"] >= 1

    def test_totals_are_sums(self):
        with ForkJoinPool(parallelism=2, name="sum-check") as pool:
            Stream.range(0, 10_000).parallel().with_pool(pool).count()
            stats = pool.stats()
            assert stats["tasks_executed"] == sum(
                w["executed"] for w in stats["per_worker"]
            )
            assert stats["steals"] == sum(w["stolen"] for w in stats["per_worker"])

    def test_real_steals_qualitatively_match_simulation(self):
        # Both the real pool and the simulator steal a small number of
        # times on a balanced tree: each should be well below leaf count.
        from repro.simcore import CostModel, SimMachine, build_dc_dag

        n, target, workers = 2**14, 2**9, 4
        with ForkJoinPool(parallelism=workers, name="qual") as pool:
            Stream.range(0, n).parallel().with_pool(pool).with_target_size(
                target
            ).sum()
            real_steals = pool.stats()["steals"]
        sim = SimMachine(workers).run(build_dc_dag(n, target, CostModel()))
        leaves = n // target
        assert 0 < sim.steals < leaves
        assert 0 <= real_steals < leaves * 4  # helping joins add a few


class TestStatsTraceAgreement:
    def test_idle_wakeups_surfaced(self):
        with ForkJoinPool(parallelism=2, name="idle") as pool:
            stats = pool.stats()
            assert "idle_wakeups" in stats
            assert stats["idle_wakeups"] >= 0

    def test_task_and_steal_events_match_stats(self):
        """Per-worker trace event counts agree with the stats() counters:
        every executed increment pairs with one task span, every stolen
        increment with one steal instant."""
        from repro.obs import trace_snapshot, tracing

        with ForkJoinPool(parallelism=4, name="agree") as pool:
            with tracing() as tracer:
                Stream.range(0, 50_000).parallel().with_pool(pool).with_target_size(
                    2_000
                ).sum()
            stats = pool.stats()
        per_worker = trace_snapshot(tracer.spans())["per_worker"]
        for row in stats["per_worker"]:
            events = per_worker.get(row["worker"], {})
            assert events.get("task", 0) == row["executed"]
            assert events.get("steal", 0) == row["stolen"]

    def test_unfork_fast_path_keeps_invariant(self):
        """A single worker joins every forked child by popping it back off
        its own deque (the unfork fast path in ``help_join``); those runs
        must be counted and traced exactly like stolen ones."""
        from repro.forkjoin import RecursiveTask
        from repro.obs import trace_snapshot, tracing

        class Fib(RecursiveTask):
            def __init__(self, n):
                super().__init__()
                self.n = n

            def compute(self):
                if self.n < 2:
                    return self.n
                a = Fib(self.n - 1)
                a.fork()
                return Fib(self.n - 2).compute() + a.join()

        with ForkJoinPool(parallelism=1, name="unfork") as pool:
            with tracing() as tracer:
                assert pool.invoke(Fib(12)) == 144
            stats = pool.stats()
        counts = trace_snapshot(tracer.spans())["counts"]
        assert stats["tasks_executed"] == counts.get("task", 0)

    def test_invariant_survives_fail_fast_cancellation(self):
        """Cancelled tasks must inflate neither ``tasks_executed`` nor the
        ``task`` span count — the invariant holds even for aborted runs."""
        from repro.obs import trace_snapshot, tracing

        def poison(x):
            if x >= (1 << 18) - 64:
                raise ZeroDivisionError
            return x

        with ForkJoinPool(parallelism=4, name="agree-cancel") as pool:
            with tracing() as tracer:
                with pytest.raises(ZeroDivisionError):
                    Stream.range(0, 1 << 18).parallel().with_pool(pool).map(
                        poison
                    ).to_list()
            stats = pool.stats()
        per_worker = trace_snapshot(tracer.spans())["per_worker"]
        for row in stats["per_worker"]:
            events = per_worker.get(row["worker"], {})
            assert events.get("task", 0) == row["executed"]
        assert stats["tasks_cancelled"] > 0

    def test_stats_snapshot_is_consistent_under_load(self):
        """Totals always equal the per-worker sums, even while workers
        are actively mutating the counters (the old implementation could
        tear here)."""
        import threading

        with ForkJoinPool(parallelism=4, name="consistent") as pool:
            stop = threading.Event()
            failures = []

            def hammer():
                while not stop.is_set():
                    stats = pool.stats()
                    if stats["tasks_executed"] != sum(
                        w["executed"] for w in stats["per_worker"]
                    ):
                        failures.append(stats)
                    if stats["steals"] != sum(
                        w["stolen"] for w in stats["per_worker"]
                    ):
                        failures.append(stats)

            reader = threading.Thread(target=hammer, daemon=True)
            reader.start()
            for _ in range(5):
                Stream.range(0, 30_000).parallel().with_pool(pool).with_target_size(
                    1_000
                ).sum()
            stop.set()
            reader.join(timeout=5.0)
            assert not failures


class TestCsvExport:
    def test_rows_to_csv(self):
        text = rows_to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed == [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4.5"}]

    def test_empty_rejected(self):
        with pytest.raises(IllegalArgumentError):
            rows_to_csv([])

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(IllegalArgumentError):
            rows_to_csv([{"a": 1}, {"b": 2}])

    def test_export_series(self, tmp_path):
        path = export_series([{"x": 1}], tmp_path / "sub" / "s.csv")
        assert path.exists()
        assert "x" in path.read_text()

    def test_export_all(self, tmp_path):
        paths = export_all(tmp_path)
        assert len(paths) == 6
        names = {p.stem for p in paths}
        assert "fig3_fig4" in names
        fig = next(p for p in paths if p.stem == "fig3_fig4")
        rows = list(csv.DictReader(io.StringIO(fig.read_text())))
        assert len(rows) == 7  # sizes 2^20..2^26
        assert "speedup" in rows[0]
