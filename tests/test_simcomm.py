"""Tests for the SPMD rank-program layer (SimComm)."""

import operator

import pytest

from repro.common import IllegalArgumentError, IllegalStateError
from repro.mpi import CommModel
from repro.mpi.simcomm import (
    Compute,
    Recv,
    Send,
    SimComm,
    hypercube_allreduce,
)

COMM = CommModel(alpha=10, beta=1, element_bytes=8)


class TestBasicMessaging:
    def test_ping(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, data="hello", tag=1)
            else:
                data = yield Recv(source=0, tag=1)
                assert data == "hello"
                return data

        times, results = SimComm(2, COMM).run(program)
        assert results[1] == "hello"
        assert times[1] > times[0]  # receiver waited for the transfer

    def test_ping_pong(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, data=1)
                value = yield Recv(source=1)
                return value
            value = yield Recv(source=0)
            yield Send(dest=0, data=value + 1)
            return value

        _, results = SimComm(2, COMM).run(program)
        assert results[0] == 2
        assert results[1] == 1

    def test_fifo_non_overtaking(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, data="first")
                yield Send(dest=1, data="second")
            else:
                a = yield Recv(source=0)
                b = yield Recv(source=0)
                return (a, b)

        _, results = SimComm(2, COMM).run(program)
        assert results[1] == ("first", "second")

    def test_tags_demultiplex(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, data="A", tag=1)
                yield Send(dest=1, data="B", tag=2)
            else:
                b = yield Recv(source=0, tag=2)
                a = yield Recv(source=0, tag=1)
                return (a, b)

        _, results = SimComm(2, COMM).run(program)
        assert results[1] == ("A", "B")

    def test_compute_advances_clock(self):
        def program(rank, size):
            yield Compute(cost=123.0)

        times, _ = SimComm(1, COMM).run(program)
        assert times[0] == 123.0

    def test_message_time_scales_with_payload(self):
        def make(payload):
            def program(rank, size):
                if rank == 0:
                    yield Send(dest=1, data=payload)
                else:
                    yield Recv(source=0)

            return program

        t_small, _ = SimComm(2, COMM).run(make([0]))
        t_big, _ = SimComm(2, COMM).run(make([0] * 1000))
        assert t_big[1] > t_small[1]


class TestErrors:
    def test_deadlock_detected(self):
        def program(rank, size):
            # Both ranks receive first: classic deadlock.
            yield Recv(source=1 - rank)
            yield Send(dest=1 - rank, data=0)

        with pytest.raises(IllegalStateError, match="deadlock"):
            SimComm(2, COMM).run(program)

    def test_invalid_destination(self):
        def program(rank, size):
            yield Send(dest=5, data=0)

        with pytest.raises(IllegalArgumentError):
            SimComm(2, COMM).run(program)

    def test_invalid_source(self):
        def program(rank, size):
            yield Recv(source=-1)

        with pytest.raises(IllegalArgumentError):
            SimComm(1, COMM).run(program)

    def test_invalid_yield(self):
        def program(rank, size):
            yield "not a request"

        with pytest.raises(IllegalArgumentError):
            SimComm(1, COMM).run(program)

    def test_negative_compute(self):
        def program(rank, size):
            yield Compute(cost=-1)

        with pytest.raises(IllegalArgumentError):
            SimComm(1, COMM).run(program)


class TestHypercubeAllreduce:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8, 16])
    def test_every_rank_gets_total(self, ranks):
        _, results = hypercube_allreduce(
            lambda r: r + 1, operator.add, ranks, COMM
        )
        assert results == [sum(range(1, ranks + 1))] * ranks

    def test_non_commutative_ordered(self):
        _, results = hypercube_allreduce(
            lambda r: chr(ord("a") + r), operator.add, 4, COMM
        )
        assert all(sorted(v) == list("abcd") for v in results)
        assert len(set(results)) == 1  # all ranks agree exactly

    def test_log_rounds_timing(self):
        times2, _ = hypercube_allreduce(lambda r: r, operator.add, 2, COMM)
        times16, _ = hypercube_allreduce(lambda r: r, operator.add, 16, COMM)
        # 4 rounds vs 1 round: roughly 4x the communication on the
        # critical path.
        assert max(times16) > 2 * max(times2)

    def test_power_of_two_required(self):
        with pytest.raises(IllegalArgumentError):
            hypercube_allreduce(lambda r: r, operator.add, 3, COMM)

    def test_agrees_with_collectives_allreduce(self):
        from repro.mpi.collectives import allreduce

        values = [(r * 13) % 7 for r in range(8)]
        expected, _ = allreduce(values, operator.add, COMM)
        _, results = hypercube_allreduce(
            lambda r: values[r], operator.add, 8, COMM
        )
        assert results == expected

    def test_deterministic(self):
        a = hypercube_allreduce(lambda r: r, operator.add, 8, COMM)
        b = hypercube_allreduce(lambda r: r, operator.add, 8, COMM)
        assert a == b


class TestFaultInjection:
    """Message-level faults on the ``mpi:send:<src>-><dest>`` site."""

    @staticmethod
    def _ping(rank, size):
        if rank == 0:
            yield Send(dest=1, data="hello", tag=1)
        else:
            data = yield Recv(source=0, tag=1)
            return data

    def test_lost_message_yields_diagnosable_deadlock(self):
        from repro.faults import FaultPlan, fault_injection

        plan = FaultPlan(seed=1).inject("mpi:send:0->1", "lose", times=1)
        with fault_injection(plan):
            with pytest.raises(IllegalStateError) as excinfo:
                SimComm(2, COMM).run(self._ping)
        message = str(excinfo.value)
        assert "deadlock" in message
        # Per-rank blocked state names the awaited channel ...
        assert "rank 1 blocked on Recv(source=0, tag=1)" in message
        # ... and the diagnostic pins the hang on the injected loss.
        assert "lost by fault injection" in message
        assert "0->1 tag=1" in message

    def test_delay_is_virtual_and_slows_receiver(self):
        from repro.faults import FaultPlan, fault_injection

        clean_times, _ = SimComm(2, COMM).run(self._ping)
        plan = FaultPlan(seed=2).inject("mpi:send", "delay", delay=500.0)
        with fault_injection(plan):
            slow_times, results = SimComm(2, COMM).run(self._ping)
        assert results[1] == "hello"
        assert slow_times[1] >= clean_times[1] + 500.0
        assert slow_times[0] == clean_times[0]  # sender is unaffected

    def test_duplicate_preserves_fifo_non_overtaking(self):
        from repro.faults import FaultPlan, fault_injection

        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, data="first")
                yield Send(dest=1, data="second")
            else:
                received = []
                for _ in range(3):  # one message arrives twice
                    received.append((yield Recv(source=0)))
                return received

        plan = FaultPlan(seed=3).inject("mpi:send:0->1", "duplicate", times=1)
        with fault_injection(plan):
            _, results = SimComm(2, COMM).run(program)
        # The duplicate sits adjacent to its original: order is preserved.
        assert results[1] == ["first", "first", "second"]

    def test_raise_mode_propagates_from_sender(self):
        from repro.faults import FaultInjected, FaultPlan, fault_injection

        plan = FaultPlan(seed=4).inject("mpi:send", "raise", times=1)
        with fault_injection(plan):
            with pytest.raises(FaultInjected):
                SimComm(2, COMM).run(self._ping)

    def test_channel_pattern_is_selective(self):
        from repro.faults import FaultPlan, fault_injection

        # Losing 1->0 must not affect the 0->1 ping.
        plan = FaultPlan(seed=5).inject("mpi:send:1->0", "lose")
        with fault_injection(plan):
            _, results = SimComm(2, COMM).run(self._ping)
        assert results[1] == "hello"
        assert plan.stats()["injected"] == 0

    def test_probabilistic_faults_are_deterministic(self):
        from repro.faults import FaultPlan, fault_injection
        import operator as op

        def run(seed):
            plan = FaultPlan(seed).inject("mpi:send", "delay", delay=100.0,
                                          probability=0.5)
            with fault_injection(plan):
                times, results = hypercube_allreduce(
                    lambda r: r + 1, op.add, 8, COMM
                )
            return times, results, plan.stats()["injected"]

        a = run(9)
        b = run(9)
        assert a == b
        assert a[1] == [sum(range(1, 9))] * 8  # payloads still correct
        assert a[2] > 0
