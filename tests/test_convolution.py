"""Tests for FFT-based convolution and polynomial multiplication."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convolution import (
    circular_convolution,
    convolve,
    ifft,
    polynomial_multiply,
)
from repro.forkjoin import ForkJoinPool

floats = st.floats(-10, 10, allow_nan=False)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="conv-test")
    yield p
    p.shutdown()


class TestIfft:
    @pytest.mark.parametrize("n_log", [0, 3, 8])
    def test_inverts_fft(self, n_log, pool):
        from repro.core import fft

        rng = random.Random(n_log)
        data = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(2**n_log)]
        round_trip = ifft(fft(data, pool=pool), pool=pool)
        np.testing.assert_allclose(round_trip, data, atol=1e-10)

    def test_matches_numpy_ifft(self, pool):
        data = [complex(i, -i) for i in range(16)]
        np.testing.assert_allclose(
            ifft(data, pool=pool), np.fft.ifft(data), atol=1e-10
        )

    def test_non_power_rejected(self):
        from repro.common import NotPowerOfTwoError

        with pytest.raises(NotPowerOfTwoError):
            ifft([1j, 2j, 3j], parallel=False)


class TestCircularConvolution:
    def test_matches_numpy_circular(self, pool):
        rng = random.Random(1)
        a = [rng.uniform(-1, 1) for _ in range(16)]
        b = [rng.uniform(-1, 1) for _ in range(16)]
        expected = np.real(np.fft.ifft(np.fft.fft(a) * np.fft.fft(b)))
        out = circular_convolution([complex(x) for x in a],
                                   [complex(x) for x in b], pool=pool)
        np.testing.assert_allclose([v.real for v in out], expected, atol=1e-9)

    def test_identity_element(self, pool):
        # Convolving with the unit impulse returns the input.
        x = [complex(i) for i in range(8)]
        delta = [1 + 0j] + [0j] * 7
        out = circular_convolution(x, delta, pool=pool)
        np.testing.assert_allclose(out, x, atol=1e-10)

    def test_dissimilar_rejected(self):
        with pytest.raises(ValueError):
            circular_convolution([1j, 2j], [1j], parallel=False)


class TestConvolve:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(floats, min_size=1, max_size=24),
        st.lists(floats, min_size=1, max_size=24),
    )
    def test_matches_numpy_convolve(self, a, b):
        out = convolve(a, b, parallel=False)
        np.testing.assert_allclose(out, np.convolve(a, b), atol=1e-6, rtol=1e-6)

    def test_parallel(self, pool):
        rng = random.Random(2)
        a = [rng.uniform(-1, 1) for _ in range(100)]
        b = [rng.uniform(-1, 1) for _ in range(37)]
        np.testing.assert_allclose(
            convolve(a, b, pool=pool), np.convolve(a, b), atol=1e-9
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convolve([], [1], parallel=False)


class TestPolynomialMultiply:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(floats, min_size=1, max_size=16),
        st.lists(floats, min_size=1, max_size=16),
    )
    def test_matches_coefficient_convolution(self, p, q):
        # np.polymul trims leading zeros; the raw coefficient product is
        # the convolution, which we compare against directly.
        out = polynomial_multiply(p, q, parallel=False)
        np.testing.assert_allclose(out, np.convolve(p, q), atol=1e-6, rtol=1e-6)

    def test_consistent_with_evaluation(self, pool):
        # (p·q)(x) == p(x) · q(x) — links the convolution to the paper's
        # polynomial-value function.
        from repro.core import polynomial_value

        rng = random.Random(3)
        p = [rng.uniform(-1, 1) for _ in range(8)]
        q = [rng.uniform(-1, 1) for _ in range(8)]
        product = polynomial_multiply(p, q, pool=pool)
        # pad product to a power of two for the evaluator
        padded = [0.0] * (16 - len(product)) + product
        x = 0.87
        lhs = polynomial_value(padded, x, pool=pool)
        rhs = polynomial_value(p, x, pool=pool) * polynomial_value(q, x, pool=pool)
        assert lhs == pytest.approx(rhs, rel=1e-8)
