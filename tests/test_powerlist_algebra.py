"""Tests for structural recursion schemes (induction principles)."""

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.powerlist import (
    PowerList,
    depth,
    from_function,
    induction_tie,
    induction_zip,
)


def plists(max_log=6):
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(st.integers(-100, 100), min_size=2**k, max_size=2**k)
    ).map(PowerList)


class TestDepth:
    @pytest.mark.parametrize("n,d", [(1, 0), (2, 1), (8, 3), (64, 6)])
    def test_depth(self, n, d):
        assert depth(PowerList([0] * n)) == d


class TestFromFunction:
    def test_builds_by_index(self):
        p = from_function(lambda i: i * i, 4)
        assert list(p) == [0, 1, 4, 9]

    def test_roots_of_unity_example(self):
        import cmath

        n = 4
        w = cmath.exp(2j * cmath.pi / (2 * n))
        powers = from_function(lambda i: w**i, n)
        assert abs(powers[0] - 1) < 1e-12
        assert abs(powers[1] - w) < 1e-12


class TestInductionTie:
    @given(plists())
    def test_sum(self, p):
        assert induction_tie(p, lambda a: a, operator.add) == sum(p)

    @given(plists())
    def test_identity_as_list(self, p):
        out = induction_tie(p, lambda a: [a], operator.add)
        assert out == list(p)

    @given(plists())
    def test_max(self, p):
        assert induction_tie(p, lambda a: a, max) == max(p)


class TestInductionZip:
    @given(plists())
    def test_sum_equals_tie_sum(self, p):
        assert induction_zip(p, lambda a: a, operator.add) == sum(p)

    @given(plists(max_log=4))
    def test_zip_identity_undoes_zip_order(self, p):
        # Reassembling sub-results with list-concatenation under *zip*
        # induction produces the bit-reversal permutation of p -- the inv
        # function.  Check the length-4 instance explicitly.
        out = induction_zip(p, lambda a: [a], operator.add)
        assert sorted(out) == sorted(p)

    def test_inv_via_zip_induction(self):
        p = PowerList([0, 1, 2, 3, 4, 5, 6, 7])
        out = induction_zip(p, lambda a: [a], operator.add)
        # inv of [0..7] is the bit-reversal permutation
        assert out == [0, 4, 2, 6, 1, 5, 3, 7]

    @given(plists(max_log=5))
    def test_counts_match(self, p):
        count = induction_zip(p, lambda a: 1, operator.add)
        assert count == len(p)
