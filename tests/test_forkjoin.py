"""Tests for the work-stealing fork/join executor."""

import threading
import time

import pytest

from repro.common import IllegalStateError
from repro.forkjoin import (
    ForkJoinPool,
    RecursiveAction,
    RecursiveTask,
    WorkStealingDeque,
    common_pool,
)


class TestWorkStealingDeque:
    def test_owner_lifo(self):
        d = WorkStealingDeque()
        d.push(1)
        d.push(2)
        assert d.pop() == 2
        assert d.pop() == 1
        assert d.pop() is None

    def test_thief_fifo(self):
        d = WorkStealingDeque()
        d.push(1)
        d.push(2)
        assert d.steal() == 1
        assert d.steal() == 2
        assert d.steal() is None

    def test_remove(self):
        d = WorkStealingDeque()
        d.push("a")
        d.push("b")
        assert d.remove("a")
        assert not d.remove("a")
        assert d.pop() == "b"

    def test_len_and_bool(self):
        d = WorkStealingDeque()
        assert not d
        d.push(1)
        assert len(d) == 1
        assert d


class SumTask(RecursiveTask):
    """Canonical fork/join example: recursive range sum."""

    def __init__(self, lo, hi, threshold=64):
        super().__init__()
        self.lo, self.hi, self.threshold = lo, hi, threshold

    def compute(self):
        if self.hi - self.lo <= self.threshold:
            return sum(range(self.lo, self.hi))
        mid = (self.lo + self.hi) // 2
        left = SumTask(self.lo, mid, self.threshold)
        right = SumTask(mid, self.hi, self.threshold)
        left.fork()
        right_result = right.compute()
        return left.join() + right_result


class FibTask(RecursiveTask):
    """Deep, irregular task tree — stresses helping joins."""

    def __init__(self, n):
        super().__init__()
        self.n = n

    def compute(self):
        if self.n < 2:
            return self.n
        a = FibTask(self.n - 1)
        b = FibTask(self.n - 2)
        a.fork()
        return b.compute() + a.join()


class TouchAction(RecursiveAction):
    def __init__(self, out, index):
        super().__init__()
        self.out = out
        self.index = index

    def compute(self):
        self.out[self.index] = threading.current_thread().name


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="test")
    yield p
    p.shutdown()


class TestForkJoinPool:
    def test_invoke_sum(self, pool):
        n = 10_000
        assert pool.invoke(SumTask(0, n)) == n * (n - 1) // 2

    def test_deep_recursion_fib(self, pool):
        assert pool.invoke(FibTask(15)) == 610

    def test_many_roots_concurrently(self, pool):
        tasks = [pool.submit(SumTask(0, 1000, threshold=16)) for _ in range(20)]
        for t in tasks:
            assert t.join() == 499500

    def test_exception_propagates(self, pool):
        class Boom(RecursiveTask):
            def compute(self):
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            pool.invoke(Boom())

    def test_exception_in_forked_child_propagates(self, pool):
        class Child(RecursiveTask):
            def compute(self):
                raise KeyError("child")

        class Parent(RecursiveTask):
            def compute(self):
                c = Child()
                c.fork()
                return c.join()

        with pytest.raises(KeyError):
            pool.invoke(Parent())

    def test_recursive_action(self, pool):
        out = {}

        class Fanout(RecursiveAction):
            def compute(self):
                children = [TouchAction(out, i) for i in range(8)]
                for c in children:
                    c.fork()
                for c in children:
                    c.join()

        pool.invoke(Fanout())
        assert set(out.keys()) == set(range(8))

    def test_work_actually_distributed(self):
        # With 4 workers and enough leaf tasks, more than one worker thread
        # should participate (statistically certain with 200 sleeps).
        with ForkJoinPool(parallelism=4, name="dist") as p:
            seen = set()
            lock = threading.Lock()

            class Leaf(RecursiveAction):
                def compute(self):
                    time.sleep(0.001)
                    with lock:
                        seen.add(threading.current_thread().name)

            class Root(RecursiveAction):
                def compute(self):
                    leaves = [Leaf() for _ in range(200)]
                    for leaf in leaves:
                        leaf.fork()
                    for leaf in leaves:
                        leaf.join()

            p.invoke(Root())
        assert len(seen) >= 2

    def test_submit_after_shutdown_rejected(self):
        p = ForkJoinPool(parallelism=1)
        p.shutdown()
        with pytest.raises(IllegalStateError):
            p.submit(SumTask(0, 10))

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            ForkJoinPool(parallelism=0)

    def test_fork_outside_pool_without_submit_rejected(self):
        with pytest.raises(IllegalStateError):
            SumTask(0, 10).fork()

    def test_invoke_from_inside_worker_runs_inline(self, pool):
        class Outer(RecursiveTask):
            def compute(self):
                return pool.invoke(SumTask(0, 100))

        assert pool.invoke(Outer()) == 4950

    def test_task_run_idempotent(self):
        calls = []

        class Once(RecursiveTask):
            def compute(self):
                calls.append(1)
                return 1

        t = Once()
        t.run()
        t.run()
        assert calls == [1]

    def test_invoke_returns_result_directly(self):
        class Five(RecursiveTask):
            def compute(self):
                return 5

        assert Five().invoke() == 5

    def test_get_raw_result(self):
        class Five(RecursiveTask):
            def compute(self):
                return 5

        t = Five()
        assert t.get_raw_result() is None
        t.run()
        assert t.get_raw_result() == 5

    def test_repr(self, pool):
        assert "parallelism=4" in repr(pool)


class TestCommonPool:
    def test_common_pool_singleton(self):
        assert common_pool() is common_pool()

    def test_common_pool_executes(self):
        assert common_pool().invoke(SumTask(0, 1000)) == 499500
