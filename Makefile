# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test chaos bench bench-smoke figures examples clean

install:
	pip install -e .[test] || pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest \
	    tests/test_faults.py tests/test_failure_injection.py -q \
	    --faulthandler-timeout=300

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab9_bulk_path.py --smoke \
	    --out benchmarks/results/ab9_bulk_path_smoke.json

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

figures:
	$(PYTHON) -m repro.bench --out benchmarks/results

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results/*.txt \
	       $$(find . -name __pycache__ -type d)
