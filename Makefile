# Convenience targets for the reproduction repository.

PYTHON ?= python

# Single source of truth for the chaos seed sweep — the CI matrix loads
# the same file, so `make chaos` and the chaos job cannot drift.
CHAOS_SEED_FILE := .github/chaos-seeds.json

# Likewise for the fusion fuzz sweep (CI fusion-fuzz job).
FUSION_FUZZ_SEED_FILE := .github/fusion-fuzz-seeds.json

.PHONY: install test chaos fusion-fuzz bench bench-smoke bench-regression \
        serve-load figures examples clean

install:
	pip install -e .[test] || pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

chaos:
	@for seed in $$($(PYTHON) -c "import json; \
	    print(' '.join(str(s) for s in json.load(open('$(CHAOS_SEED_FILE)'))))"); do \
	    echo "== chaos seed $$seed =="; \
	    CHAOS_SEEDS=$$seed PYTHONPATH=src $(PYTHON) -m pytest \
	        tests/test_faults.py tests/test_failure_injection.py -q || exit 1; \
	done

# Mirrors the CI fusion-fuzz job: the pipeline-fuzz vocabulary (counted
# kernels, zip, barriers) replayed under each pinned hypothesis seed.
fusion-fuzz:
	@for seed in $$($(PYTHON) -c "import json; \
	    print(' '.join(str(s) for s in json.load(open('$(FUSION_FUZZ_SEED_FILE)'))))"); do \
	    echo "== fusion fuzz seed $$seed =="; \
	    FUSION_FUZZ_SEED=$$seed PYTHONPATH=src $(PYTHON) -m pytest \
	        tests/test_pipeline_fuzz.py -q || exit 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab9_bulk_path.py --smoke \
	    --out benchmarks/results/ab9_bulk_path_smoke.json

# Mirrors the CI bench-regression job: parity-gated AB9 + AB10 + AB11
# + AB12 smoke sweeps, then the speedup-ratio gate against the committed
# baselines.
bench-regression:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab9_bulk_path.py --smoke \
	    --out benchmarks/results/ab9_bulk_path_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab10_fusion.py --smoke \
	    --out benchmarks/results/ab10_fusion_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab11_process_backend.py --smoke \
	    --out benchmarks/results/ab11_process_backend_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab12_adaptive.py --smoke \
	    --out benchmarks/results/ab12_adaptive_smoke.json
	$(PYTHON) benchmarks/check_regression.py \
	    --baseline benchmarks/results/BENCH_bulk_path.json \
	    --fresh benchmarks/results/ab9_bulk_path_smoke.json
	$(PYTHON) benchmarks/check_regression.py \
	    --baseline benchmarks/results/BENCH_fusion.json \
	    --fresh benchmarks/results/ab10_fusion_smoke.json
	$(PYTHON) benchmarks/check_regression.py \
	    --baseline benchmarks/results/BENCH_process_backend.json \
	    --fresh benchmarks/results/ab11_process_backend_smoke.json
	$(PYTHON) benchmarks/check_regression.py \
	    --baseline benchmarks/results/BENCH_adaptive.json \
	    --fresh benchmarks/results/ab12_adaptive_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/check_regression.py --overhead
	PYTHONPATH=src $(PYTHON) examples/profile_report.py \
	    --out-profile benchmarks/results/profile_report.json \
	    --out-trace benchmarks/results/profile_trace.json

# Mirrors the CI serve-load job: AB13's fairness/rejection/chaos gates
# in smoke mode, with the worker-kill leg seeded from the chaos file.
serve-load:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ab13_serve.py --smoke \
	    --chaos-seed $$($(PYTHON) -c "import json; \
	        print(json.load(open('$(CHAOS_SEED_FILE)'))[0])") \
	    --out benchmarks/results/ab13_serve_smoke.json

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

figures:
	$(PYTHON) -m repro.bench --out benchmarks/results

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results/*.txt \
	       $$(find . -name __pycache__ -type d)
